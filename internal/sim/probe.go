package sim

import "hotpotato/internal/graph"

// Engine-level instrumentation: a Probe receives one reusable
// StepSnapshot per committed step, an EventSink receives per-packet
// lifecycle events. Both are strictly pay-for-what-you-use — with no
// probe or sink attached the step loop performs a handful of nil
// checks and nothing else, preserving the CI-gated 0 allocs/step
// invariant; with one attached, every snapshot field is produced from
// order-independent sources (metric deltas merged at the step barrier,
// per-shard counters summed commutatively, a post-commit census walked
// sequentially), so the series is byte-identical for every worker and
// shard count. The higher-level probe vocabulary — per-round and
// per-phase callbacks, schedule annotation, exporters — lives in
// internal/obs, which consumes these hooks.

// StepSnapshot is the per-step instrumentation record. One snapshot
// value is owned by the engine and reused across steps; probes must
// copy anything they keep (including the Occupancy backing array).
//
// All counter fields are deltas for the step just committed, not
// cumulative totals; cumulative values remain available on the
// engine's Metrics. The QueueDelay/Blocked/MaxQueueLen fields are
// meaningful only for the store-and-forward engine, the
// Deflections/Excited/fault fields only for the hot-potato engine.
type StepSnapshot struct {
	// Step is the step number just committed (the engine's t).
	Step int `json:"step"`
	// Active is the number of in-flight packets after the commit.
	Active int `json:"active"`
	// Injected, Absorbed and Moves are this step's deltas.
	Injected int `json:"injected"`
	Absorbed int `json:"absorbed"`
	Moves    int `json:"moves"`
	// Deflections counts this step's deflections by DeflectKind.
	Deflections [4]int `json:"deflections"`
	// Excited counts requests submitted this step at or above
	// ExcitedPriority — the engine-visible shadow of the frame router's
	// excitation census, accumulated per shard and summed at the merge.
	Excited int `json:"excited"`
	// Fault and injection-pressure deltas.
	FaultBlocked   int `json:"fault_blocked"`
	FaultStalls    int `json:"fault_stalls"`
	InjectionWaits int `json:"injection_waits"`
	// EdgesDown is the number of edges the fault model marks down at
	// this step, and Availability the complementary healthy fraction
	// (1.0 with no fault model). Unlike the counters these are gauges,
	// not deltas; the O(E) sweep behind them runs only with a probe
	// attached and a non-nil fault model.
	EdgesDown    int     `json:"edges_down"`
	Availability float64 `json:"availability"`
	// Occupancy is the per-level active-packet census after the commit
	// (length Depth()+1, engine-owned backing, valid until the next
	// step).
	Occupancy []int `json:"occupancy"`
	// WindowLo/WindowHi bound the active level band after the commit:
	// every in-flight packet sits at a level in [WindowLo, WindowHi], and
	// both bounds are tight (each holds at least one packet). With no
	// packets in flight WindowLo=0, WindowHi=-1. On the hot-potato engine
	// under the frame schedule the band tracks the frontier, exposing the
	// active-frame level skipping (Occupancy entries outside the band are
	// zero by construction). The SF engine reports the full depth range.
	WindowLo int `json:"window_lo"`
	WindowHi int `json:"window_hi"`
	// Store-and-forward deltas (zero on the hot-potato engine).
	QueueDelay int `json:"queue_delay"`
	Blocked    int `json:"blocked"`
	// MaxQueueLen is the peak queue length observed this step (not a
	// delta; SF engine only).
	MaxQueueLen int `json:"max_queue_len"`
}

// ExcitedPriority is the request-priority threshold above which the
// engine counts a request as excited in StepSnapshot.Excited. The frame
// router's excited state maps to exactly this priority (asserted in
// core's tests); routers with richer priority schemes simply see every
// request at or above it counted.
const ExcitedPriority int64 = 2

// Probe receives the hot-potato engine's per-step snapshot. OnStep runs
// sequentially on the stepping goroutine after the commit, before
// observers and Router.EndStep; the snapshot is engine-owned and valid
// only for the duration of the call.
type Probe interface {
	OnStep(e *Engine, s *StepSnapshot)
}

// SFProbe is the store-and-forward engine's probe counterpart.
type SFProbe interface {
	OnSFStep(e *SFEngine, s *StepSnapshot)
}

// EventKind classifies a packet lifecycle event.
type EventKind uint8

const (
	// EventInject: the packet entered the network (arg = source node).
	EventInject EventKind = iota
	// EventDeflect: the packet lost its request and was deflected
	// (arg = DeflectKind).
	EventDeflect
	// EventExcite: the packet was promoted to the excited state
	// (router-emitted; arg unused).
	EventExcite
	// EventRestore: an excitation episode ended (router-emitted; arg =
	// RestoreReason).
	EventRestore
	// EventAbsorb: the packet reached its destination (arg =
	// destination node).
	EventAbsorb
	// EventStall: the packet held in place for one step — a fault
	// stall on the hot-potato engine, a full downstream buffer on the
	// store-and-forward engine (arg unused).
	EventStall
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventInject:
		return "inject"
	case EventDeflect:
		return "deflect"
	case EventExcite:
		return "excite"
	case EventRestore:
		return "restore"
	case EventAbsorb:
		return "absorb"
	case EventStall:
		return "stall"
	}
	return "event?"
}

// RestoreReason values carried in EventRestore's arg.
const (
	// RestoreTarget: the excited packet reached its target (success).
	RestoreTarget int32 = iota
	// RestoreDeflected: the episode ended in a deflection.
	RestoreDeflected
	// RestoreRoundEnd: the episode survived to a round or phase
	// boundary and was reset there.
	RestoreRoundEnd
	// RestoreAbsorbed: the packet was absorbed while excited (success).
	RestoreAbsorbed
)

// EventSink receives packet lifecycle events. All engine emissions
// happen at sequential points of the step (injection commit, deflection
// replay, move commit), so the event order is deterministic for every
// worker and shard count. Events within one step carry the same stamp
// and are ordered by commit position, not by intra-step causality.
type EventSink interface {
	RecordEvent(t int, pid PacketID, kind EventKind, arg int32)
}

// probePair fans OnStep out to two probes in attachment order.
type probePair struct{ a, b Probe }

func (p probePair) OnStep(e *Engine, s *StepSnapshot) {
	p.a.OnStep(e, s)
	p.b.OnStep(e, s)
}

// sfProbePair fans OnSFStep out to two probes in attachment order.
type sfProbePair struct{ a, b SFProbe }

func (p sfProbePair) OnSFStep(e *SFEngine, s *StepSnapshot) {
	p.a.OnSFStep(e, s)
	p.b.OnSFStep(e, s)
}

// sinkPair fans events out to two sinks in attachment order.
type sinkPair struct{ a, b EventSink }

func (p sinkPair) RecordEvent(t int, pid PacketID, kind EventKind, arg int32) {
	p.a.RecordEvent(t, pid, kind, arg)
	p.b.RecordEvent(t, pid, kind, arg)
}

// chainProbe composes probes: nil + p = p, existing + p = fan-out in
// attachment order. Attaching must never silently drop an earlier
// probe (the composability contract trace.Recorder relies on).
func chainProbe(cur, p Probe) Probe {
	if cur == nil {
		return p
	}
	return probePair{cur, p}
}

func chainSFProbe(cur, p SFProbe) SFProbe {
	if cur == nil {
		return p
	}
	return sfProbePair{cur, p}
}

func chainSink(cur, s EventSink) EventSink {
	if cur == nil {
		return s
	}
	return sinkPair{cur, s}
}

// AttachProbe registers a per-step probe on the engine. Probes compose:
// attaching a second one chains it after the first rather than
// replacing it. Like observers, probes are per-run attachments and are
// cleared by Reset.
func (e *Engine) AttachProbe(p Probe) {
	if p == nil {
		return
	}
	e.probe = chainProbe(e.probe, p)
	e.growSnapshot()
}

// HasProbe reports whether at least one probe is attached.
func (e *Engine) HasProbe() bool { return e.probe != nil }

// AttachEventSink registers a packet lifecycle event sink. Sinks
// compose like probes, and are likewise cleared by Reset.
func (e *Engine) AttachEventSink(s EventSink) {
	if s == nil {
		return
	}
	e.events = chainSink(e.events, s)
}

// Events returns the attached event sink chain (nil when none).
// Routers that emit their own lifecycle events (e.g. the frame
// router's excite/restore) fetch it here at Init and skip the
// bookkeeping entirely when nobody is listening.
func (e *Engine) Events() EventSink { return e.events }

// growSnapshot sizes the reusable snapshot's census backing once, at
// attach time, so the per-step fill never allocates. The backing is
// zeroed and the remembered fill window emptied here, so the per-step
// window-batched fill (emitSnapshot) starts from a clean census even
// when the backing is recycled across runs.
func (e *Engine) growSnapshot() {
	if want := e.G.Depth() + 1; len(e.snap.Occupancy) != want {
		e.snap.Occupancy = make([]int, want)
	} else {
		clear(e.snap.Occupancy)
	}
	e.snapLo, e.snapHi = 0, -1
}

// emitSnapshot builds the per-step snapshot from the metric deltas
// against lastM and the post-commit occupancy, then hands it to the
// probe chain. Runs on the stepping goroutine, after the commit.
func (e *Engine) emitSnapshot(t int, excited int) {
	s := &e.snap
	s.Step = t
	s.Active = len(e.active)
	s.Injected = e.M.Injected - e.lastM.Injected
	s.Absorbed = e.M.Absorbed - e.lastM.Absorbed
	s.Moves = e.M.Moves - e.lastM.Moves
	for k := range s.Deflections {
		s.Deflections[k] = e.M.Deflections[k] - e.lastM.Deflections[k]
	}
	s.Excited = excited
	s.FaultBlocked = e.M.FaultBlocked - e.lastM.FaultBlocked
	s.FaultStalls = e.M.FaultStalls - e.lastM.FaultStalls
	s.InjectionWaits = e.M.InjectionWaits - e.lastM.InjectionWaits
	s.EdgesDown, s.Availability = 0, 1
	if e.Faults != nil {
		for eid := 0; eid < e.G.NumEdges(); eid++ {
			if e.Faults(graph.EdgeID(eid), t) {
				s.EdgesDown++
			}
		}
		s.Availability = 1 - float64(s.EdgesDown)/float64(e.G.NumEdges())
	}
	e.lastM = e.M
	// The census copies the engine's incremental per-level counters over
	// the active window only — levels outside [lo, hi] are provably
	// empty — and zeroes only the band the previous emit filled
	// (snapLo/snapHi), so on a deep network with a narrow frontier both
	// halves of the fill follow the window width, not the depth (the old
	// full-array zero was the last O(depth) walk on the probed path).
	lo, hi := e.Window()
	s.WindowLo, s.WindowHi = lo, hi
	occ := s.Occupancy
	for l := e.snapLo; l <= e.snapHi; l++ {
		occ[l] = 0
	}
	for l := lo; l <= hi; l++ {
		occ[l] = int(e.levelCount[l])
	}
	e.snapLo, e.snapHi = lo, hi
	e.probe.OnStep(e, s)
}

// AttachProbe registers a per-step probe on the store-and-forward
// engine; probes compose and are cleared by Reset.
func (e *SFEngine) AttachProbe(p SFProbe) {
	if p == nil {
		return
	}
	e.probe = chainSFProbe(e.probe, p)
	if want := e.G.Depth() + 1; len(e.snap.Occupancy) != want {
		e.snap.Occupancy = make([]int, want)
	}
}

// AttachEventSink registers a lifecycle event sink on the
// store-and-forward engine; sinks compose and are cleared by Reset.
func (e *SFEngine) AttachEventSink(s EventSink) {
	if s == nil {
		return
	}
	e.events = chainSink(e.events, s)
}

// emitSFSnapshot builds the store-and-forward per-step snapshot. The
// occupancy census attributes each queued packet to the level of the
// node its queue waits at (the edge's From node).
func (e *SFEngine) emitSFSnapshot(t int) {
	s := &e.snap
	s.Step = t
	s.Active = e.M.Injected - e.M.Absorbed
	s.Injected = e.M.Injected - e.lastM.Injected
	s.Absorbed = e.M.Absorbed - e.lastM.Absorbed
	s.Moves = e.M.Moves - e.lastM.Moves
	s.QueueDelay = e.M.QueueDelay - e.lastM.QueueDelay
	s.Blocked = e.M.Blocked - e.lastM.Blocked
	s.InjectionWaits = e.M.InjectionBlocked - e.lastM.InjectionBlocked
	s.MaxQueueLen = 0
	s.EdgesDown, s.Availability = 0, 1      // SF engine has no fault model
	s.WindowLo, s.WindowHi = 0, e.G.Depth() // SF engine keeps no level census
	e.lastM = e.M
	occ := s.Occupancy
	for i := range occ {
		occ[i] = 0
	}
	census := func(pos []int32) {
		for _, p := range pos {
			eid := e.edgesByLevelDesc[p]
			if n := len(e.queue[eid]); n > 0 {
				occ[e.G.Node(e.G.Edge(eid).From).Level] += n
				if n > s.MaxQueueLen {
					s.MaxQueueLen = n
				}
			}
		}
	}
	census(e.activePos)
	census(e.newPos)
	e.probe.OnSFStep(e, s)
}
