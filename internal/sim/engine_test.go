package sim_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// mergeProblem builds a 3-level network where two packets from distinct
// sources merge at a middle node and then share the final edge — the
// smallest instance that forces a hot-potato conflict and a backward
// deflection.
//
//	a(0) \
//	      m(1) -- x(2)
//	b(0) /
func mergeProblem(t *testing.T) *workload.Problem {
	t.Helper()
	b := graph.NewBuilder("merge")
	a := b.AddNode(0, "a")
	bb := b.AddNode(0, "b")
	m := b.AddNode(1, "m")
	x := b.AddNode(2, "x")
	eam := b.AddEdge(a, m)
	ebm := b.AddEdge(bb, m)
	emx := b.AddEdge(m, x)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{{eam, emx}, {ebm, emx}})
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return &workload.Problem{Name: "merge", G: g, Set: set, C: 2, D: 2}
}

func linearProblem(t *testing.T, n, k int) *workload.Problem {
	t.Helper()
	g, err := topo.Linear(n)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.SingleFile(g, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSinglePacketDelivery(t *testing.T) {
	p := linearProblem(t, 5, 1)
	e := sim.NewEngine(p, baselines.NewGreedy(), 1)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	if steps != 4 {
		t.Errorf("steps = %d, want 4 (path length)", steps)
	}
	pkt := &e.Packets[0]
	if !pkt.Absorbed || pkt.InjectTime != 0 || pkt.AbsorbTime != 4 {
		t.Errorf("packet = inject %d absorb %d", pkt.InjectTime, pkt.AbsorbTime)
	}
	if pkt.Latency() != 4 {
		t.Errorf("latency = %d", pkt.Latency())
	}
	if pkt.Deflections != 0 {
		t.Errorf("deflections = %d", pkt.Deflections)
	}
	if e.M.Injected != 1 || e.M.Absorbed != 1 || e.M.Moves != 4 {
		t.Errorf("metrics = %+v", e.M)
	}
}

func TestPipelinedPacketsNoConflict(t *testing.T) {
	// SingleFile packets at staggered levels pipeline without ever
	// colliding under greedy.
	p := linearProblem(t, 6, 3)
	e := sim.NewEngine(p, baselines.NewGreedy(), 2)
	_, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	if d := e.M.TotalDeflections(); d != 0 {
		t.Errorf("deflections = %d, want 0", d)
	}
}

func TestMergeConflictDeflectsBackwardAndSafe(t *testing.T) {
	p := mergeProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 3)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	// Both packets inject at t=0, meet at m at t=1, one wins emx, the
	// loser bounces back to its source, retraces, and finishes 2 steps
	// behind: absorbed at 2 and 4. One more conflict cannot happen
	// because the loser trails by two steps.
	if steps != 4 {
		t.Errorf("steps = %d, want 4", steps)
	}
	if d := e.M.TotalDeflections(); d != 1 {
		t.Errorf("deflections = %d, want 1", d)
	}
	if e.M.Deflections[sim.DeflectArrivalReverse] != 1 {
		t.Errorf("deflection kinds = %v, want one arrival-reverse", e.M.Deflections)
	}
	if e.M.UnsafeDeflections() != 0 {
		t.Errorf("unsafe deflections = %d", e.M.UnsafeDeflections())
	}
	lat := []int{e.Packets[0].Latency(), e.Packets[1].Latency()}
	if !(lat[0] == 2 && lat[1] == 4 || lat[0] == 4 && lat[1] == 2) {
		t.Errorf("latencies = %v, want {2,4}", lat)
	}
}

func TestDeflectedPacketPathStaysValid(t *testing.T) {
	p := mergeProblem(t)
	e := sim.NewEngine(p, baselines.NewGreedy(), 4)
	e.AddObserver(func(step int, en *sim.Engine) {
		for i := range en.Packets {
			pkt := &en.Packets[i]
			if pkt.Active && !pkt.PathValid(en.G) {
				t.Errorf("step %d: packet %d path invalid: %v (cur %d)", step, pkt.ID, pkt.PathList, pkt.Cur)
			}
		}
	})
	if _, done := e.Run(100); !done {
		t.Fatal("run did not complete")
	}
}

func TestInjectionIsolation(t *testing.T) {
	// SingleFile(linear(4), 3) has sources at levels 0, 1, 2 — all free
	// at t=0, so every packet injects immediately with no waits.
	p := linearProblem(t, 4, 3)
	e := sim.NewEngine(p, baselines.NewGreedy(), 5)
	if _, done := e.Run(100); !done {
		t.Fatal("run did not complete")
	}
	if e.M.InjectionWaits != 0 {
		t.Errorf("InjectionWaits = %d, want 0", e.M.InjectionWaits)
	}

	// Now delay packet 2's injection request so packet 1's transit
	// occupies its source when it finally wants in.
	e2 := sim.NewEngine(p, &delayedInject{delay: map[sim.PacketID]int{2: 1}}, 6)
	if _, done := e2.Run(100); !done {
		t.Fatal("delayed run did not complete")
	}
	if e2.M.InjectionWaits == 0 {
		t.Error("expected injection waits when source is occupied")
	}
	if e2.M.Injected != 3 || e2.M.Absorbed != 3 {
		t.Errorf("metrics = %+v", e2.M)
	}
}

// delayedInject wraps greedy but holds selected packets out until the
// given step.
type delayedInject struct {
	baselines.Greedy
	delay map[sim.PacketID]int
	g     *graph.Leveled
}

func (d *delayedInject) Init(e *sim.Engine) { d.g = e.G; d.Greedy.Init(e) }

func (d *delayedInject) WantInject(t int, p *sim.Packet) bool {
	return t >= d.delay[p.ID]
}

func (d *delayedInject) Request(t int, p *sim.Packet) sim.Request {
	return sim.Request{Edge: p.PathList[0], Dir: d.g.DirectionFrom(p.PathList[0], p.Cur), Priority: 0}
}

func TestVoluntaryBackwardRequestPrependsPath(t *testing.T) {
	// A router that, once the packet reaches level 1, requests its
	// arrival edge backward (the wait-state oscillation move), then
	// resumes. The path list must grow by the prepended edge and shrink
	// again on the retrace.
	g, err := topo.Linear(4)
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{{0, 1, 2}})
	p := &workload.Problem{Name: "osc", G: g, Set: set, C: 1, D: 3}
	r := &oscillateOnce{}
	e := sim.NewEngine(p, r, 7)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	// Path: fwd (t0), back (t1), fwd (t2), fwd (t3), fwd (t4) => 5 steps.
	if steps != 5 {
		t.Errorf("steps = %d, want 5", steps)
	}
	pkt := &e.Packets[0]
	if pkt.BackwardMoves != 1 || pkt.ForwardMoves != 4 {
		t.Errorf("moves fwd=%d back=%d", pkt.ForwardMoves, pkt.BackwardMoves)
	}
	if !r.sawPrepend {
		t.Error("path was never prepended during oscillation")
	}
}

type oscillateOnce struct {
	g          *graph.Leveled
	oscillated bool
	sawPrepend bool
}

func (o *oscillateOnce) Name() string                     { return "oscillate-once" }
func (o *oscillateOnce) Init(e *sim.Engine)               { o.g = e.G }
func (o *oscillateOnce) WantInject(int, *sim.Packet) bool { return true }

func (o *oscillateOnce) Request(t int, p *sim.Packet) sim.Request {
	if !o.oscillated && p.ArrivalEdge != graph.NoEdge && o.g.Node(p.Cur).Level == 1 {
		o.oscillated = true
		return sim.Request{Edge: p.ArrivalEdge, Dir: p.ArrivalDir.Reverse(), Priority: 0}
	}
	if o.oscillated && len(p.PathList) == 3 && p.Cur == 0 {
		o.sawPrepend = true
	}
	return sim.Request{Edge: p.PathList[0], Dir: o.g.DirectionFrom(p.PathList[0], p.Cur), Priority: 0}
}

func (*oscillateOnce) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}
func (*oscillateOnce) OnMove(int, *sim.Packet)                                   {}
func (*oscillateOnce) OnAbsorb(int, *sim.Packet)                                 {}
func (*oscillateOnce) EndStep(int, *sim.Engine)                                  {}

func TestPriorityWinsConflict(t *testing.T) {
	// On the merge problem give packet 0 an always-higher priority; it
	// must never be deflected.
	p := mergeProblem(t)
	for trial := 0; trial < 10; trial++ {
		r := &priorityRouter{prio: map[sim.PacketID]int64{0: 10, 1: 0}}
		e := sim.NewEngine(p, r, int64(trial))
		if _, done := e.Run(100); !done {
			t.Fatal("run did not complete")
		}
		if e.Packets[0].Deflections != 0 {
			t.Errorf("trial %d: high-priority packet deflected %d times", trial, e.Packets[0].Deflections)
		}
		if e.Packets[1].Deflections != 1 {
			t.Errorf("trial %d: low-priority packet deflected %d times, want 1", trial, e.Packets[1].Deflections)
		}
	}
}

type priorityRouter struct {
	g    *graph.Leveled
	prio map[sim.PacketID]int64
}

func (r *priorityRouter) Name() string                     { return "priority" }
func (r *priorityRouter) Init(e *sim.Engine)               { r.g = e.G }
func (r *priorityRouter) WantInject(int, *sim.Packet) bool { return true }
func (r *priorityRouter) Request(t int, p *sim.Packet) sim.Request {
	return sim.Request{Edge: p.PathList[0], Dir: r.g.DirectionFrom(p.PathList[0], p.Cur), Priority: r.prio[p.ID]}
}
func (*priorityRouter) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}
func (*priorityRouter) OnMove(int, *sim.Packet)                                   {}
func (*priorityRouter) OnAbsorb(int, *sim.Packet)                                 {}
func (*priorityRouter) EndStep(int, *sim.Engine)                                  {}

func TestDeterminismSameSeed(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	p, err := workload.HotSpot(g, rng, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (int, [4]int) {
		e := sim.NewEngine(p, baselines.NewGreedy(), seed)
		steps, done := e.Run(10000)
		if !done {
			t.Fatal("run did not complete")
		}
		return steps, e.M.Deflections
	}
	s1, d1 := run(42)
	s2, d2 := run(42)
	if s1 != s2 || d1 != d2 {
		t.Errorf("same seed diverged: (%d,%v) vs (%d,%v)", s1, d1, s2, d2)
	}
}

func TestLinkCapacityNeverExceeded(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	p, err := workload.HotSpot(g, rng, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p, baselines.NewGreedy(), 8)
	e.AddObserver(func(step int, en *sim.Engine) {
		// Occupancy of any node never exceeds its degree (else the next
		// step could not assign slots).
		for v := 0; v < en.G.NumNodes(); v++ {
			if occ := len(en.At(graph.NodeID(v))); occ > en.G.Node(graph.NodeID(v)).Degree() {
				t.Fatalf("step %d: node %d holds %d packets, degree %d", step, v, occ, en.G.Node(graph.NodeID(v)).Degree())
			}
		}
	})
	if _, done := e.Run(10000); !done {
		t.Fatal("run did not complete")
	}
}

func TestGreedyOnButterflyWorkloads(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, mk := range []func() (*workload.Problem, error){
		func() (*workload.Problem, error) { return workload.FullThroughput(g, rng) },
		func() (*workload.Problem, error) { return workload.Random(g, rng, 0.4) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		e := sim.NewEngine(p, baselines.NewGreedy(), 9)
		steps, done := e.Run(100000)
		if !done {
			t.Fatalf("%s: did not complete in %d steps", p.Name, steps)
		}
		if steps < p.D {
			t.Errorf("%s: steps %d < dilation %d", p.Name, steps, p.D)
		}
		for i := range e.Packets {
			if lat := e.Packets[i].Latency(); lat < len(e.Packets[i].Preselected) {
				t.Errorf("%s: packet %d latency %d below path length %d", p.Name, i, lat, len(e.Packets[i].Preselected))
			}
		}
	}
}

func TestRandGreedyCompletesAndExcites(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	p, err := workload.HotSpot(g, rng, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := baselines.NewRandGreedy(0.1)
	e := sim.NewEngine(p, r, 11)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	if r.Excitations == 0 {
		t.Error("no excitations happened")
	}
}

func TestFarthestToGoCompletes(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	p, err := workload.HotSpot(g, rng, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(p, baselines.NewFarthestToGo(), 13)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
}

func TestRequestValidationPanics(t *testing.T) {
	p := linearProblem(t, 3, 1)
	r := &badRouter{}
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-incident edge request")
		}
	}()
	e := sim.NewEngine(p, r, 14)
	e.Step()
}

type badRouter struct{}

func (*badRouter) Name() string                     { return "bad" }
func (*badRouter) Init(*sim.Engine)                 {}
func (*badRouter) WantInject(int, *sim.Packet) bool { return true }
func (*badRouter) Request(t int, p *sim.Packet) sim.Request {
	return sim.Request{Edge: 1, Dir: graph.Forward} // not incident to level-0 node
}
func (*badRouter) OnDeflect(int, *sim.Packet, graph.EdgeID, sim.DeflectKind) {}
func (*badRouter) OnMove(int, *sim.Packet)                                   {}
func (*badRouter) OnAbsorb(int, *sim.Packet)                                 {}
func (*badRouter) EndStep(int, *sim.Engine)                                  {}

func TestMaxStepsBudget(t *testing.T) {
	p := linearProblem(t, 10, 1)
	e := sim.NewEngine(p, baselines.NewGreedy(), 15)
	steps, done := e.Run(3)
	if done || steps != 3 {
		t.Errorf("Run(3) = (%d,%v), want (3,false)", steps, done)
	}
	// Continue to completion.
	steps, done = e.Run(100)
	if !done || steps != 9 {
		t.Errorf("resumed run = (%d,%v), want (9,true)", steps, done)
	}
}
