package sim

import "math/bits"

// splitMix64 is the fast, allocation-free generator used on the
// engine's arbitration hot path (conflict tie-breaking). The engine's
// public Rng (math/rand) stays the source for router-level randomness —
// set assignment, excitation coins — so algorithm code is unchanged;
// splitMix64 only replaces the Intn calls inside the per-step conflict
// loop, where the ~25ns/locked-call cost of math/rand showed up in
// profiles. Runs remain byte-for-byte deterministic per seed: the
// stream is a pure function of the engine seed, and arbitration draws
// happen in a deterministic order.
//
// The generator is Steele, Lea & Flood's SplitMix64 (the seeder of
// xoshiro); it passes BigCrush and has period 2^64.
type splitMix64 struct {
	s uint64
}

// newSplitMix64 seeds the generator. Any seed is fine, including 0.
func newSplitMix64(seed int64) splitMix64 {
	return splitMix64{s: uint64(seed)}
}

// next returns the next 64 uniform bits.
func (r *splitMix64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) for n >= 1 via Lemire's
// multiply-shift reduction. The residual bias is at most n/2^64 —
// unobservable at any feasible sample size (a chi-square test over the
// engine's k-way tie-breaks sees a perfectly uniform winner).
func (r *splitMix64) intn(n int32) int32 {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int32(hi)
}
