package sim

// Arbitration randomness is counter-based: every draw is a pure
// function of (engine seed, step, slot, packet), with no sequential
// generator state at all. The engine resolves an equal-priority slot
// conflict by giving each contender the key arbKey(seed, t, slot, pid)
// and crowning the largest key (ties, ~2^-64, break toward the larger
// packet ID). Because max is commutative, the winner does not depend on
// the order in which contenders are enumerated — requests may be
// gathered packet-by-packet, node-by-node, or concurrently from shard
// workers and the trace is byte-identical. Each of k contenders holds
// the largest of k iid uniform keys with probability exactly 1/k, so
// the reservoir-selection uniformity of the sequential engine is
// preserved (and chi-square tested in arbitration_test.go).
//
// A slot (edge, direction) is leavable from exactly one node, so keying
// on the slot is the same as keying on (node, slot) — the form the
// sharding design is stated in.
//
// The mixer is Steele, Lea & Flood's SplitMix64 finalizer (the seeder
// of xoshiro); it passes BigCrush as a counter-mode generator.

// mix64 is the SplitMix64 finalizer: a bijective avalanche mixer whose
// output over a counter sequence is a high-quality uniform stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// StreamSeed derives an independent stream seed from a run seed and a
// caller-chosen salt. Routers that need order-independent randomness
// (e.g. the frame router's excitation coin) derive their own stream
// here so their draws never interleave with engine arbitration.
func StreamSeed(seed int64, salt uint64) uint64 {
	return mix64(mix64(uint64(seed)+0x9E3779B97F4A7C15) ^ salt)
}

// arbStream derives the engine's arbitration stream seed.
func arbStream(seed int64) uint64 {
	return StreamSeed(seed, 0xA5B35705) // fixed engine-arbitration salt
}

// arbKey returns the arbitration key of contender pid for slot s at
// step t: 64 iid uniform bits per (seed, step, slot, packet) tuple.
// Step and slot pack exactly into the first mixing word, the packet ID
// into the second, so distinct tuples never collide before mixing.
func arbKey(seed uint64, t int, s int32, pid PacketID) uint64 {
	h := mix64(seed ^ (uint64(uint32(t)) | uint64(uint32(s))<<32))
	return mix64(h ^ 0x9E3779B97F4A7C15 ^ uint64(uint32(pid)))
}

// CoinFloat returns a uniform float64 in [0, 1) determined by (stream,
// step, packet) — the counter-based replacement for a sequential
// rng.Float64() inside Router.Request, where draw order must not
// depend on request iteration order. The 53 high bits of the mixed
// counter form the mantissa, the standard uniform-double construction.
func CoinFloat(stream uint64, t int, pid PacketID) float64 {
	h := mix64(stream ^ (uint64(uint32(t)) | uint64(uint32(pid))<<32))
	return float64(h>>11) / (1 << 53)
}
