package sim

import (
	"strings"
	"testing"

	"hotpotato/internal/graph"
)

// tinyLine builds a 4-node line for unit tests inside the package.
func tinyLine(t *testing.T) *graph.Leveled {
	t.Helper()
	b := graph.NewBuilder("line")
	var prev graph.NodeID = -1
	for l := 0; l < 4; l++ {
		v := b.AddNode(l, "")
		if prev >= 0 {
			b.AddEdge(prev, v)
		}
		prev = v
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPacketAccessors(t *testing.T) {
	g := tinyLine(t)
	p := &Packet{Cur: 1, Dst: 3, PathList: []graph.EdgeID{1, 2}}
	if p.CurrentLevel(g) != 1 {
		t.Errorf("CurrentLevel = %d", p.CurrentLevel(g))
	}
	if p.HeadDirection(g) != graph.Forward {
		t.Error("HeadDirection should be forward from From endpoint")
	}
	p2 := &Packet{Cur: 2, Dst: 3, PathList: []graph.EdgeID{1, 2}}
	if p2.HeadDirection(g) != graph.Backward {
		t.Error("HeadDirection should be backward from To endpoint")
	}
}

func TestPacketPathValid(t *testing.T) {
	g := tinyLine(t)
	cases := []struct {
		name string
		p    Packet
		want bool
	}{
		{"valid", Packet{Cur: 1, Dst: 3, PathList: []graph.EdgeID{1, 2}}, true},
		{"empty at dst", Packet{Cur: 3, Dst: 3, PathList: nil}, true},
		{"empty not at dst", Packet{Cur: 2, Dst: 3, PathList: nil}, false},
		{"head not at cur", Packet{Cur: 0, Dst: 3, PathList: []graph.EdgeID{1, 2}}, false},
		{"wrong dst", Packet{Cur: 1, Dst: 0, PathList: []graph.EdgeID{1, 2}}, false},
		{"non-chaining", Packet{Cur: 0, Dst: 3, PathList: []graph.EdgeID{0, 2}}, false},
	}
	for _, c := range cases {
		if got := c.p.PathValid(g); got != c.want {
			t.Errorf("%s: PathValid = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPacketLatencyUnabsorbed(t *testing.T) {
	p := &Packet{InjectTime: 3}
	if p.Latency() != -1 {
		t.Errorf("Latency of unabsorbed = %d", p.Latency())
	}
	p.Absorbed = true
	p.AbsorbTime = 9
	if p.Latency() != 6 {
		t.Errorf("Latency = %d", p.Latency())
	}
}

func TestDeflectKindProperties(t *testing.T) {
	cases := []struct {
		k        DeflectKind
		str      string
		safe     bool
		backward bool
	}{
		{DeflectArrivalReverse, "arrival-reverse", true, true},
		{DeflectSafeBackward, "safe-backward", true, true},
		{DeflectUnsafeBackward, "unsafe-backward", false, true},
		{DeflectForward, "forward", false, false},
	}
	for _, c := range cases {
		if c.k.String() != c.str {
			t.Errorf("String(%d) = %q", c.k, c.k.String())
		}
		if c.k.Safe() != c.safe {
			t.Errorf("Safe(%s) = %v", c.str, c.k.Safe())
		}
		if c.k.Backward() != c.backward {
			t.Errorf("Backward(%s) = %v", c.str, c.k.Backward())
		}
	}
	if !strings.Contains(DeflectKind(9).String(), "DeflectKind") {
		t.Error("unknown kind should render")
	}
}

func TestSlotIndexRoundTrip(t *testing.T) {
	for e := graph.EdgeID(0); e < 10; e++ {
		for _, d := range []graph.Direction{graph.Forward, graph.Backward} {
			s := slotIndex(e, d)
			if slotEdge(s) != e || slotDir(s) != d {
				t.Fatalf("slot round-trip broke at (%d,%v)", e, d)
			}
		}
	}
}
