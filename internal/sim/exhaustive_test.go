package sim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// TestExhaustiveTwoPacketLadder enumerates every ordered pair of
// distinct (source, destination) requests on a small ladder and runs
// the greedy router under several seeds. Every configuration must
// complete with valid paths throughout and latencies bounded by a small
// function of the network size — a miniature model check of the engine.
func TestExhaustiveTwoPacketLadder(t *testing.T) {
	g, err := topo.Ladder(3) // 8 nodes, depth 3, every node has an alternative link
	if err != nil {
		t.Fatal(err)
	}
	type req struct{ src, dst graph.NodeID }
	var reqs []req
	for s := graph.NodeID(0); int(s) < g.NumNodes(); s++ {
		if len(g.Node(s).Up) == 0 {
			continue
		}
		reach := g.ForwardReachableFrom(s)
		for d := graph.NodeID(0); int(d) < g.NumNodes(); d++ {
			if d != s && reach[d] && g.Node(d).Level > g.Node(s).Level {
				reqs = append(reqs, req{s, d})
			}
		}
	}
	if len(reqs) < 10 {
		t.Fatalf("only %d single requests enumerated", len(reqs))
	}

	configs := 0
	for i, a := range reqs {
		for _, bb := range reqs[i+1:] {
			if a.src == bb.src {
				continue // many-to-one: one packet per source
			}
			set, err := paths.SelectRandom(g, rand.New(rand.NewSource(12345)), []paths.Request{
				{Src: a.src, Dst: a.dst}, {Src: bb.src, Dst: bb.dst},
			})
			if err != nil {
				t.Fatalf("paths for %v/%v: %v", a, bb, err)
			}
			p := &workload.Problem{Name: "pair", G: g, Set: set,
				C: set.Congestion(), D: set.Dilation()}
			for seed := int64(0); seed < 3; seed++ {
				e := sim.NewEngine(p, baselines.NewGreedy(), seed)
				bad := false
				e.AddObserver(func(step int, en *sim.Engine) {
					for k := range en.Packets {
						pk := &en.Packets[k]
						if pk.Active && !pk.PathValid(en.G) {
							bad = true
						}
					}
				})
				steps, done := e.Run(200)
				if !done {
					t.Fatalf("pair %v/%v seed %d did not complete", a, bb, seed)
				}
				if bad {
					t.Fatalf("pair %v/%v seed %d produced an invalid path", a, bb, seed)
				}
				// Two packets on a depth-3 ladder: worst case is a
				// handful of bounce-backs, never more than ~5x depth.
				if steps > 20 {
					t.Fatalf("pair %v/%v seed %d took %d steps", a, bb, seed, steps)
				}
			}
			configs++
		}
	}
	if configs < 100 {
		t.Fatalf("only %d configurations exercised", configs)
	}
}

// TestExhaustiveThreePacketMerge enumerates all assignments of three
// packets over the four level-0 sources of a width-4 funnel into a
// single sink, forcing maximal fan-in contention.
func TestExhaustiveThreePacketMerge(t *testing.T) {
	// Funnel: 4 sources at level 0, 2 mids at level 1, 1 sink... build
	// levels 4-2-1 complete.
	b := graph.NewBuilder("funnel")
	var l0, l1 []graph.NodeID
	for i := 0; i < 4; i++ {
		l0 = append(l0, b.AddNode(0, fmt.Sprintf("s%d", i)))
	}
	for i := 0; i < 2; i++ {
		l1 = append(l1, b.AddNode(1, fmt.Sprintf("m%d", i)))
	}
	sink := b.AddNode(2, "t")
	for _, u := range l0 {
		for _, m := range l1 {
			b.AddEdge(u, m)
		}
	}
	for _, m := range l1 {
		b.AddEdge(m, sink)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// All 4-choose-3 source triples, all 2^3 mid choices per packet.
	for mask := 0; mask < 4; mask++ { // excluded source
		var srcs []graph.NodeID
		for i, s := range l0 {
			if i != mask {
				srcs = append(srcs, s)
			}
		}
		for mids := 0; mids < 8; mids++ {
			ps := make([]graph.Path, 3)
			for k := 0; k < 3; k++ {
				mid := l1[(mids>>k)&1]
				e1 := g.EdgeBetween(srcs[k], mid)
				e2 := g.EdgeBetween(mid, sink)
				ps[k] = graph.Path{e1, e2}
			}
			set := paths.NewPathSet(g, ps)
			p := &workload.Problem{Name: "funnel3", G: g, Set: set,
				C: set.Congestion(), D: set.Dilation()}
			for seed := int64(0); seed < 2; seed++ {
				e := sim.NewEngine(p, baselines.NewGreedy(), seed)
				steps, done := e.Run(100)
				if !done {
					t.Fatalf("mask=%d mids=%b seed=%d stuck", mask, mids, seed)
				}
				if steps < 2 {
					t.Fatalf("completed impossibly fast: %d", steps)
				}
				if e.M.UnsafeDeflections() != 0 {
					t.Fatalf("mask=%d mids=%b seed=%d unsafe deflections %v",
						mask, mids, seed, e.M.Deflections)
				}
			}
		}
	}
}
