package sim_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func TestSFSinglePacket(t *testing.T) {
	p := linearProblem(t, 5, 1)
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 1)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	if steps != 4 {
		t.Errorf("steps = %d, want 4", steps)
	}
	if e.M.QueueDelay != 0 || e.M.MaxQueueLen != 1 {
		t.Errorf("metrics = %+v", e.M)
	}
	if e.Packets[0].Latency() != 4 {
		t.Errorf("latency = %d", e.Packets[0].Latency())
	}
}

func TestSFMergeQueues(t *testing.T) {
	p := mergeProblem(t)
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 2)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	// Both packets reach m at t=1; the shared edge serializes them:
	// finish at 2 and 3.
	if steps != 3 {
		t.Errorf("steps = %d, want 3", steps)
	}
	if e.M.MaxQueueLen != 2 {
		t.Errorf("MaxQueueLen = %d, want 2", e.M.MaxQueueLen)
	}
	if e.M.QueueDelay != 1 {
		t.Errorf("QueueDelay = %d, want 1", e.M.QueueDelay)
	}
}

func TestSFMakespanLowerBound(t *testing.T) {
	// Store-and-forward can never beat max(C over a single edge chain, D).
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p, err := workload.HotSpot(g, rng, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 4)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	if steps < p.C {
		t.Errorf("steps %d < C %d; a single edge carries C packets", steps, p.C)
	}
	if steps < p.D {
		t.Errorf("steps %d < D %d", steps, p.D)
	}
}

func TestSFRandomDelay(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	p, err := workload.HotSpot(g, rng, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := baselines.NewRandomDelay(p.C, 1)
	e := sim.NewSFEngine(p, s, 6)
	steps, done := e.Run(100000)
	if !done {
		t.Fatal("run did not complete")
	}
	// The delay window stretches the start but bounds queueing; the
	// makespan still cannot beat C.
	if steps < p.C {
		t.Errorf("steps %d < C %d", steps, p.C)
	}
	// Delays must be inside the window.
	for i := range e.Packets {
		if it := e.Packets[i].InjectTime; it < 0 || it >= p.C+p.D+p.C {
			t.Errorf("packet %d injected at %d, outside window", i, it)
		}
	}
}

func TestSFFarthestFirst(t *testing.T) {
	p := mergeProblem(t)
	e := sim.NewSFEngine(p, baselines.NewFarthestFirst(), 7)
	if _, done := e.Run(100); !done {
		t.Fatal("run did not complete")
	}
	// Equal path lengths here; mostly checks the scheduler wiring.
	if e.M.Absorbed != 2 {
		t.Errorf("absorbed = %d", e.M.Absorbed)
	}
}

func TestSFDeterminism(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	p, err := workload.HotSpot(g, rng, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() int {
		e := sim.NewSFEngine(p, baselines.NewRandomDelay(p.C, 1), 99)
		steps, done := e.Run(100000)
		if !done {
			t.Fatal("run did not complete")
		}
		return steps
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %d vs %d", a, b)
	}
}

func TestSFPacketsFollowPreselectedExactly(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	p, err := workload.FullThroughput(g, rng)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 10)
	if _, done := e.Run(100000); !done {
		t.Fatal("run did not complete")
	}
	for i := range e.Packets {
		pkt := &e.Packets[i]
		if pkt.ForwardMoves != len(pkt.Preselected) {
			t.Errorf("packet %d made %d moves, path length %d", i, pkt.ForwardMoves, len(pkt.Preselected))
		}
		if pkt.BackwardMoves != 0 || pkt.Deflections != 0 {
			t.Errorf("packet %d: store-and-forward must not deflect", i)
		}
	}
}

func TestSFMaxStepsBudget(t *testing.T) {
	p := linearProblem(t, 10, 1)
	e := sim.NewSFEngine(p, baselines.NewFIFO(), 11)
	steps, done := e.Run(2)
	if done || steps != 2 {
		t.Errorf("Run(2) = (%d,%v)", steps, done)
	}
	steps, done = e.Run(100)
	if !done || steps != 9 {
		t.Errorf("resume = (%d,%v), want (9,true)", steps, done)
	}
	if e.Now() != 9 {
		t.Errorf("Now = %d", e.Now())
	}
}
