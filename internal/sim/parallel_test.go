package sim_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/faults"
	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// recorder wraps a router and logs every sequential callback — the
// engine's full router-visible trace. WantInject/Request are passed
// through unlogged (they may run concurrently on shard workers); the
// callbacks below are always sequential, so appending is safe.
type recorder struct {
	inner sim.Router
	log   strings.Builder
}

func (r *recorder) Name() string       { return r.inner.Name() }
func (r *recorder) Init(e *sim.Engine) { r.inner.Init(e) }
func (r *recorder) WantInject(t int, p *sim.Packet) bool {
	return r.inner.WantInject(t, p)
}
func (r *recorder) Request(t int, p *sim.Packet) sim.Request {
	return r.inner.Request(t, p)
}
func (r *recorder) OnDeflect(t int, p *sim.Packet, e graph.EdgeID, k sim.DeflectKind) {
	fmt.Fprintf(&r.log, "d %d %d %d %d\n", t, p.ID, e, k)
	r.inner.OnDeflect(t, p, e, k)
}
func (r *recorder) OnMove(t int, p *sim.Packet) {
	fmt.Fprintf(&r.log, "m %d %d %d\n", t, p.ID, p.Cur)
	r.inner.OnMove(t, p)
}
func (r *recorder) OnAbsorb(t int, p *sim.Packet) {
	fmt.Fprintf(&r.log, "a %d %d\n", t, p.ID)
	r.inner.OnAbsorb(t, p)
}
func (r *recorder) EndStep(t int, e *sim.Engine) { r.inner.EndStep(t, e) }

// concurrentRecorder additionally forwards the inner router's
// ConcurrentRouter certification through the wrapper.
type concurrentRecorder struct{ recorder }

func (r *concurrentRecorder) ConcurrentRequests() bool {
	return r.inner.(sim.ConcurrentRouter).ConcurrentRequests()
}

// plannerRecorder forwards the inner router's InjectionPlanner bound,
// so recorded runs exercise the engine's release queue exactly like
// unwrapped runs (a wrapper that hid InjectStep would silently fall
// back to the legacy full pending sweep).
type plannerRecorder struct{ recorder }

func (r *plannerRecorder) InjectStep(p *sim.Packet) int {
	return r.inner.(sim.InjectionPlanner).InjectStep(p)
}

// concurrentPlannerRecorder preserves both certifications.
type concurrentPlannerRecorder struct{ concurrentRecorder }

func (r *concurrentPlannerRecorder) InjectStep(p *sim.Packet) int {
	return r.inner.(sim.InjectionPlanner).InjectStep(p)
}

// wrapRecorder wraps the router, preserving certification.
func wrapRecorder(inner sim.Router) (sim.Router, *recorder) {
	conc := false
	if cr, ok := inner.(sim.ConcurrentRouter); ok && cr.ConcurrentRequests() {
		conc = true
	}
	_, planner := inner.(sim.InjectionPlanner)
	switch {
	case conc && planner:
		w := &concurrentPlannerRecorder{concurrentRecorder{recorder{inner: inner}}}
		return w, &w.recorder
	case conc:
		w := &concurrentRecorder{recorder{inner: inner}}
		return w, &w.recorder
	case planner:
		w := &plannerRecorder{recorder{inner: inner}}
		return w, &w.recorder
	default:
		w := &recorder{inner: inner}
		return w, w
	}
}

// fullTrace runs the problem to completion and returns the metrics plus
// a byte-exact trace: every router callback in order, then the final
// state of every packet including its remaining path list. An optional
// trailing fault model runs the engine under that campaign.
func fullTrace(tb testing.TB, p *workload.Problem, mk func() sim.Router, seed int64, workers, shards int, faults ...sim.FaultModel) (sim.Metrics, string) {
	tb.Helper()
	router, rec := wrapRecorder(mk())
	e := sim.NewEngine(p, router, seed)
	defer e.Close()
	for _, f := range faults {
		e.Faults = f
	}
	if workers > 1 || shards > 0 {
		e.SetParallelism(workers, shards)
	}
	if _, done := e.Run(100000); !done {
		tb.Fatalf("run did not complete")
	}
	return e.M, finalTrace(e, rec)
}

// finalTrace renders the byte-exact identity of a completed run: the
// recorded callback log followed by the final state of every packet.
func finalTrace(e *sim.Engine, rec *recorder) string {
	var b strings.Builder
	b.WriteString(rec.log.String())
	for i := range e.Packets {
		pk := &e.Packets[i]
		fmt.Fprintf(&b, "p %d %d %d %d %d %d %d %v\n", pk.ID, pk.Cur,
			pk.InjectTime, pk.AbsorbTime, pk.Deflections,
			pk.ForwardMoves, pk.BackwardMoves, pk.PathList)
	}
	return b.String()
}

func matrixProblems(tb testing.TB) map[string]*workload.Problem {
	tb.Helper()
	ps := map[string]*workload.Problem{}

	g, err := topo.Butterfly(6)
	if err != nil {
		tb.Fatal(err)
	}
	bf, err := workload.FullThroughput(g, rand.New(rand.NewSource(7)))
	if err != nil {
		tb.Fatal(err)
	}
	ps["butterfly"] = bf

	mh, err := workload.MeshHard(8)
	if err != nil {
		tb.Fatal(err)
	}
	ps["mesh"] = mh

	rng := rand.New(rand.NewSource(9))
	rg, err := topo.Random(rng, 18, 3, 6, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	rp, err := workload.Random(rg, rng, 0.6)
	if err != nil {
		tb.Fatal(err)
	}
	ps["random"] = rp
	return ps
}

// workerCounts is the issue's matrix: {1, 2, GOMAXPROCS}, plus 4 to
// exercise multi-worker merging even when GOMAXPROCS is small.
func workerCounts() []int {
	ws := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, w := range ws {
		if w >= 1 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestParallelStepMatchesSequential is the tentpole's acceptance
// assertion: for every topology, router flavor (certified concurrent
// and not), worker count and shard count, the run's metrics and full
// router-visible trace are byte-identical to the sequential run.
func TestParallelStepMatchesSequential(t *testing.T) {
	routers := map[string]func() sim.Router{
		// Certified: full sharded path (requests + arbitration +
		// deflection on workers).
		"greedy": func() sim.Router { return baselines.NewGreedy() },
		// Certified, priority ties exercise hash-max arbitration.
		"oldest": func() sim.Router { return baselines.NewOldestFirst() },
		// Uncertified: sequential request sweep + sharded deflection.
		"randgreedy": func() sim.Router { return baselines.NewRandGreedy(0.1) },
	}
	for pname, p := range matrixProblems(t) {
		for rname, mk := range routers {
			t.Run(pname+"/"+rname, func(t *testing.T) {
				const seed = 42
				wantM, wantTr := fullTrace(t, p, mk, seed, 1, 0)
				for _, w := range workerCounts() {
					if w == 1 {
						continue
					}
					for _, shards := range []int{0, 3, 16} {
						gotM, gotTr := fullTrace(t, p, mk, seed, w, shards)
						if gotM != wantM {
							t.Errorf("workers=%d shards=%d: metrics differ:\n got %+v\nwant %+v", w, shards, gotM, wantM)
						}
						if gotTr != wantTr {
							t.Errorf("workers=%d shards=%d: trace differs from sequential", w, shards)
						}
					}
				}
			})
		}
	}
}

// TestParallelFaultedMatchesSequential: the fault accounting
// (FaultBlocked, FaultStalls) and the stall escape hatch must commit
// byte-identical traces for workers=1 vs workers=N under an active
// campaign. The campaign overlays periodic flaps (steady blocked/
// deflect pressure) with a short full-network outage that forces every
// in-flight packet through the stall path.
func TestParallelFaultedMatchesSequential(t *testing.T) {
	routers := map[string]func() sim.Router{
		"greedy": func() sim.Router { return baselines.NewGreedy() },
		"oldest": func() sim.Router { return baselines.NewOldestFirst() },
	}
	for pname, p := range matrixProblems(t) {
		campaign := faults.Overlay(
			faults.Flap{Period: 24, Down: 3, Rate: 0.4},
			faults.LevelBand{Lo: 0, Hi: 1 << 20, From: 10, To: 14},
		)
		model := campaign.Model(p.G, 1234)
		for rname, mk := range routers {
			t.Run(pname+"/"+rname, func(t *testing.T) {
				const seed = 42
				wantM, wantTr := fullTrace(t, p, mk, seed, 1, 0, model)
				if wantM.FaultBlocked == 0 {
					t.Error("campaign never blocked a request; test is vacuous")
				}
				if wantM.FaultStalls == 0 {
					t.Error("full outage never stalled a packet; escape hatch untested")
				}
				for _, w := range workerCounts() {
					if w == 1 {
						continue
					}
					for _, shards := range []int{0, 3, 16} {
						gotM, gotTr := fullTrace(t, p, mk, seed, w, shards, model)
						if gotM != wantM {
							t.Errorf("workers=%d shards=%d: faulted metrics differ:\n got %+v\nwant %+v", w, shards, gotM, wantM)
						}
						if gotTr != wantTr {
							t.Errorf("workers=%d shards=%d: faulted trace differs from sequential", w, shards)
						}
					}
				}
			})
		}
	}
}

// TestEngineResetMatchesFresh: a reused engine rewound with Reset must
// reproduce a fresh engine's run exactly — including when the reset
// interrupts a run in flight.
func TestEngineResetMatchesFresh(t *testing.T) {
	for pname, p := range matrixProblems(t) {
		t.Run(pname, func(t *testing.T) {
			mk := func() sim.Router { return baselines.NewOldestFirst() }
			wantM, wantTr := fullTrace(t, p, mk, 5, 1, 0)

			// Reuse one engine across three scenarios: a completed run
			// with another seed, a mid-run abandonment, then the target
			// seed.
			router, rec := wrapRecorder(mk())
			e := sim.NewEngine(p, router, 99)
			defer e.Close()
			e.Run(100000)
			e.Reset(7)
			for i := 0; i < 3 && !e.Done(); i++ {
				e.Step()
			}
			e.Reset(5)
			rec.log.Reset()
			if _, done := e.Run(100000); !done {
				t.Fatal("reused run did not complete")
			}
			var b strings.Builder
			b.WriteString(rec.log.String())
			for i := range e.Packets {
				pk := &e.Packets[i]
				fmt.Fprintf(&b, "p %d %d %d %d %d %d %d %v\n", pk.ID, pk.Cur,
					pk.InjectTime, pk.AbsorbTime, pk.Deflections,
					pk.ForwardMoves, pk.BackwardMoves, pk.PathList)
			}
			if e.M != wantM {
				t.Errorf("metrics differ after Reset:\n got %+v\nwant %+v", e.M, wantM)
			}
			if b.String() != wantTr {
				t.Errorf("trace differs after Reset")
			}
		})
	}
}

// TestSFEngineResetMatchesFresh mirrors the reset test for the
// store-and-forward engine, including the random-delay scheduler whose
// initial delays are re-drawn from the reseeded engine RNG.
func TestSFEngineResetMatchesFresh(t *testing.T) {
	for pname, p := range matrixProblems(t) {
		t.Run(pname, func(t *testing.T) {
			for _, mk := range []func() sim.Scheduler{
				func() sim.Scheduler { return baselines.NewFIFO() },
				func() sim.Scheduler { return baselines.NewRandomDelay(p.C, 1) },
			} {
				fresh := sim.NewSFEngine(p, mk(), 5)
				fresh.Run(100000)

				reused := sim.NewSFEngine(p, mk(), 99)
				reused.Run(100000)
				reused.Reset(7)
				for i := 0; i < 3 && !reused.Done(); i++ {
					reused.Step()
				}
				reused.Reset(5)
				reused.Run(100000)

				if fresh.M != reused.M {
					t.Errorf("SF metrics differ after Reset:\n got %+v\nwant %+v", reused.M, fresh.M)
				}
				for i := range fresh.Packets {
					a, b := &fresh.Packets[i], &reused.Packets[i]
					if a.InjectTime != b.InjectTime || a.AbsorbTime != b.AbsorbTime ||
						a.ForwardMoves != b.ForwardMoves {
						t.Errorf("SF packet %d differs after Reset: %+v vs %+v", i, a, b)
					}
				}
			}
		})
	}
}

// TestShardPartitionBalance pins the window-sharded partitioner's
// contract: blocks are carved from the occupied list by position (never
// from the node-ID range, which put whole cold levels on one shard),
// sizes are balanced to within one node for every (length, shards)
// combination, and concatenating the blocks in shard order reproduces
// the list exactly — the order-preservation the merge phase and the
// deflect-replay both rely on.
func TestShardPartitionBalance(t *testing.T) {
	p := matrixProblems(t)["mesh"]
	e := sim.NewEngine(p, baselines.NewGreedy(), 1)
	defer e.Close()
	nodes := p.G.NumNodes()
	for _, tc := range []struct{ n, shards int }{
		{1, 8}, {7, 8}, {8, 8}, {9, 8}, {31, 16}, {32, 16}, {33, 16},
		{nodes, 16}, {nodes - 1, 7}, {100, 3}, {5, 1}, {2, 64},
	} {
		e.SetParallelism(1, tc.shards)
		_, clamped := e.Parallelism()
		occ := make([]graph.NodeID, tc.n)
		for i := range occ {
			occ[i] = graph.NodeID((i * 13) % nodes)
		}
		blocks := sim.PartitionBlocksForTest(e, occ)
		if want := min(clamped, tc.n); len(blocks) != want {
			t.Errorf("n=%d shards=%d: %d blocks, want %d", tc.n, tc.shards, len(blocks), want)
			continue
		}
		lo, hi, total := tc.n, 0, 0
		var cat []graph.NodeID
		for _, b := range blocks {
			if len(b) < lo {
				lo = len(b)
			}
			if len(b) > hi {
				hi = len(b)
			}
			total += len(b)
			cat = append(cat, b...)
		}
		if hi-lo > 1 {
			t.Errorf("n=%d shards=%d: block skew %d (min %d, max %d), want <= 1", tc.n, tc.shards, hi-lo, lo, hi)
		}
		if total != tc.n {
			t.Errorf("n=%d shards=%d: blocks cover %d nodes", tc.n, tc.shards, total)
		}
		for i := range cat {
			if cat[i] != occ[i] {
				t.Errorf("n=%d shards=%d: concatenated blocks reorder the list at %d", tc.n, tc.shards, i)
				break
			}
		}
	}
}

// staggeredPlanner admits packet i only from step i/4 — the
// InjectionPlanner + ConcurrentRouter certified flavor, keeping a thin
// active window that slides with the admission edge. This is the shape
// window sharding exists for: the occupied list stays far smaller than
// the node array, straddling the small-window sequential cutoff as the
// run ramps and drains.
type staggeredPlanner struct{ *baselines.Greedy }

func (s *staggeredPlanner) WantInject(t int, p *sim.Packet) bool { return t >= int(p.ID)/4 }
func (s *staggeredPlanner) InjectStep(p *sim.Packet) int         { return int(p.ID) / 4 }
func (s *staggeredPlanner) ConcurrentRequests() bool             { return true }

// TestWindowShardingMatchesSequential is the tentpole's determinism
// matrix for the occupied-list partition, the fused clear+commit
// barrier, and the small-window sequential fallback: topology × router
// flavor (certified, certified planner, uncertified) × worker count ×
// fault campaign, each compared byte-for-byte against the sequential
// run. The staggered planner keeps the live window narrow so runs cross
// the minParallelOccupied cutoff in both directions.
func TestWindowShardingMatchesSequential(t *testing.T) {
	routers := map[string]func() sim.Router{
		"greedy":     func() sim.Router { return baselines.NewGreedy() },
		"staggered":  func() sim.Router { return &staggeredPlanner{Greedy: baselines.NewGreedy()} },
		"randgreedy": func() sim.Router { return baselines.NewRandGreedy(0.1) },
	}
	for pname, p := range matrixProblems(t) {
		campaigns := map[string][]sim.FaultModel{
			"nofault": nil,
			"flap":    {faults.Flap{Period: 32, Down: 4, Rate: 0.3}.Model(p.G, 77)},
		}
		for rname, mk := range routers {
			for cname, model := range campaigns {
				t.Run(pname+"/"+rname+"/"+cname, func(t *testing.T) {
					const seed = 11
					wantM, wantTr := fullTrace(t, p, mk, seed, 1, 0, model...)
					for _, w := range workerCounts() {
						if w == 1 {
							continue
						}
						for _, shards := range []int{0, 5} {
							gotM, gotTr := fullTrace(t, p, mk, seed, w, shards, model...)
							if gotM != wantM {
								t.Errorf("workers=%d shards=%d: metrics differ:\n got %+v\nwant %+v", w, shards, gotM, wantM)
							}
							if gotTr != wantTr {
								t.Errorf("workers=%d shards=%d: trace differs from sequential", w, shards)
							}
						}
					}
				})
			}
		}
	}
}

// TestSetParallelismClamps checks the knob edge cases: zero/negative
// workers, more shards than nodes, more workers than shards.
func TestSetParallelismClamps(t *testing.T) {
	p := matrixProblems(t)["mesh"]
	for _, cfg := range [][2]int{{0, 0}, {-3, -1}, {2, 1000000}, {64, 2}, {1, 7}} {
		func() {
			e := sim.NewEngine(p, baselines.NewGreedy(), 3)
			defer e.Close()
			e.SetParallelism(cfg[0], cfg[1])
			if _, done := e.Run(100000); !done {
				t.Fatalf("SetParallelism(%d, %d): run did not complete", cfg[0], cfg[1])
			}
		}()
	}
}
