package sim_test

import (
	"math/rand"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func TestBoundedBuffersNeverExceedCap(t *testing.T) {
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p, err := workload.HotSpot(g, rng, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 2, 4} {
		e := sim.NewSFEngineBuffered(p, baselines.NewFIFO(), 2, cap)
		steps, done := e.Run(100000)
		if !done {
			t.Fatalf("cap=%d did not complete", cap)
		}
		if e.M.MaxQueueLen > cap {
			t.Errorf("cap=%d: MaxQueueLen = %d", cap, e.M.MaxQueueLen)
		}
		if steps < p.C {
			t.Errorf("cap=%d: steps %d < C %d", cap, steps, p.C)
		}
	}
}

func TestBoundedBuffersMonotoneInCap(t *testing.T) {
	// Shrinking buffers can only slow things down (same scheduler,
	// same seed): steps(cap=1) >= steps(cap=4) >= steps(unbounded).
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	p, err := workload.HotSpot(g, rng, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(cap int) int {
		e := sim.NewSFEngineBuffered(p, baselines.NewFIFO(), 3, cap)
		steps, done := e.Run(100000)
		if !done {
			t.Fatalf("cap=%d did not complete", cap)
		}
		return steps
	}
	s1, s4, sInf := run(1), run(4), run(0)
	if s1 < s4 || s4 < sInf {
		t.Errorf("steps not monotone in buffer size: cap1=%d cap4=%d unbounded=%d", s1, s4, sInf)
	}
}

func TestBoundedBuffersBackpressureCounts(t *testing.T) {
	// A tight funnel with cap 1 must record blocked moves.
	g, err := topo.Butterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p, err := workload.HotSpot(g, rng, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewSFEngineBuffered(p, baselines.NewFIFO(), 4, 1)
	if _, done := e.Run(100000); !done {
		t.Fatal("did not complete")
	}
	if e.M.Blocked == 0 {
		t.Error("no blocked moves recorded on a congested cap-1 run")
	}
}

func TestBoundedInjectionBlocked(t *testing.T) {
	// Two packets share a first edge region on a linear network with
	// cap 1: the later one cannot inject while the queue is full.
	g, err := topo.Linear(6)
	if err != nil {
		t.Fatal(err)
	}
	// Both packets start at node 0? Not allowed (many-to-one). Instead,
	// saturate the first queue by a slow drain: single file with cap 1
	// still drains 1/step, so injection blocking needs two packets
	// wanting the same first edge — impossible under many-to-one on a
	// line. Use a funnel: two sources share the next queue indirectly.
	b := graph.NewBuilder("vee")
	s1 := b.AddNode(0, "")
	s2 := b.AddNode(0, "")
	m := b.AddNode(1, "")
	x := b.AddNode(2, "")
	e1 := b.AddEdge(s1, m)
	e2 := b.AddEdge(s2, m)
	e3 := b.AddEdge(m, x)
	gg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	set := paths.NewPathSet(gg, []graph.Path{{e1, e3}, {e2, e3}})
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	p := &workload.Problem{Name: "vee", G: gg, Set: set, C: 2, D: 2}
	e := sim.NewSFEngineBuffered(p, baselines.NewFIFO(), 5, 1)
	steps, done := e.Run(100)
	if !done {
		t.Fatal("did not complete")
	}
	// Both inject at t=0 (distinct first edges) and contend for the
	// cap-1 queue of e3: the loser is blocked at t=0 and crosses at
	// t=1 into the slot e3 freed earlier in the same step (top levels
	// drain first), finishing at t=3 — same makespan as unbounded, but
	// with the block recorded.
	if steps != 3 {
		t.Errorf("steps = %d, want 3", steps)
	}
	if e.M.Blocked == 0 {
		t.Error("expected blocked moves")
	}
}
