package sim_test

import (
	"fmt"
	"testing"

	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// configuredTrace is the differential harness's run: like fullTrace,
// but with the injection path selectable. With legacy set the engine is
// rewound onto the pre-release-queue full pending sweep (the legacy
// layout of injection state) before running.
func configuredTrace(tb testing.TB, p *workload.Problem, mk func() sim.Router, seed int64, workers int, legacy bool, fm sim.FaultModel) (sim.Metrics, string) {
	tb.Helper()
	router, rec := wrapRecorder(mk())
	e := sim.NewEngine(p, router, seed)
	defer e.Close()
	if fm != nil {
		e.Faults = fm
	}
	if workers > 1 {
		e.SetParallelism(workers, 0)
	}
	if legacy {
		sim.SetLegacyInjectForTest(e, true)
		e.Reset(seed)
	}
	if _, done := e.Run(100000); !done {
		tb.Fatalf("run did not complete")
	}
	return e.M, finalTrace(e, rec)
}

// TestDifferentialInjectionTraces is the SoA-vs-legacy differential
// harness: across the golden matrix (topology x router x workers x
// faults) the release-queue injection path and the legacy full pending
// sweep must commit byte-identical router-visible traces and metrics.
// The engine's other SoA structures (flat occupancy, path windows,
// preselected-node arrays) are shared by both runs and pinned
// separately by the golden digests; this harness isolates the one axis
// where a legacy layout still exists to diff against. Runs under -race
// in CI alongside the parallel determinism tests.
func TestDifferentialInjectionTraces(t *testing.T) {
	for pname, p := range matrixProblems(t) {
		for rname, mk := range goldenRouters(p) {
			seed := goldenSeeds[0]
			faultModels := map[string]sim.FaultModel{"": nil}
			if rname != "frame" {
				// Frame runs are not exercised under faults (see the
				// golden matrix: the fixed timetable may legitimately
				// exhaust the budget mid-outage).
				faultModels["/faulted"] = goldenCampaign.Model(p.G, seed)
			}
			for suffix, fm := range faultModels {
				fm := fm
				key := fmt.Sprintf("%s/%s/seed=%d%s", pname, rname, seed, suffix)
				t.Run(key, func(t *testing.T) {
					refM, refTr := configuredTrace(t, p, mk, seed, 1, false, fm)
					for _, cfg := range []struct {
						name    string
						workers int
						legacy  bool
					}{
						{"legacy/workers=1", 1, true},
						{"legacy/workers=4", 4, true},
						{"queue/workers=4", 4, false},
					} {
						m, tr := configuredTrace(t, p, mk, seed, cfg.workers, cfg.legacy, fm)
						if fmt.Sprintf("%+v", m) != fmt.Sprintf("%+v", refM) {
							t.Errorf("%s: metrics diverge from queue/workers=1:\n got %+v\nwant %+v", cfg.name, m, refM)
						}
						if tr != refTr {
							t.Errorf("%s: trace diverges from queue/workers=1 (%d vs %d bytes)", cfg.name, len(tr), len(refTr))
						}
					}
				})
			}
		}
	}
}
