package sim

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Router is a hot-potato routing algorithm driven by the Engine. The
// engine owns packet motion, conflict resolution and deflection; the
// router owns injection timing, per-packet requests (edge + priority)
// and its own state machine, advanced through the On* notifications.
type Router interface {
	// Name identifies the algorithm in reports.
	Name() string

	// Init is called once before the first step, and again on every
	// Engine.Reset. A router must (re)initialize all of its per-run
	// state here.
	Init(e *Engine)

	// WantInject reports whether the (not yet injected) packet should
	// be injected at step t. The engine additionally requires the
	// source node to be free of active packets (injection in
	// isolation); if it is not, the packet stays out regardless.
	WantInject(t int, p *Packet) bool

	// Request returns the desired traversal for active packet p at
	// step t. The returned edge must leave p.Cur.
	Request(t int, p *Packet) Request

	// OnDeflect tells the router that p lost its request and was
	// deflected along edge e (kind classifies the slot).
	OnDeflect(t int, p *Packet, e graph.EdgeID, kind DeflectKind)

	// OnMove tells the router that p's own request was granted.
	OnMove(t int, p *Packet)

	// OnAbsorb tells the router that p reached its destination.
	OnAbsorb(t int, p *Packet)

	// EndStep is called after every step commits.
	EndStep(t int, e *Engine)
}

// ConcurrentRouter is an optional Router extension. A router returning
// true from ConcurrentRequests certifies that its WantInject and
// Request methods are safe to call concurrently from multiple
// goroutines on distinct packets, and that their observable behavior
// is independent of call order: no draws from a shared sequential
// generator (use counter-based randomness such as sim.CoinFloat), no
// cross-packet writes, and shared counters only through atomics. The
// engine's parallel step path invokes Request from shard workers (and
// WantInject from injection-filter workers) only for certified
// routers; every other router keeps the sequential request sweep while
// still getting sharded deflection. The remaining callbacks (OnDeflect,
// OnMove, OnAbsorb, EndStep) are always invoked sequentially in a
// deterministic order, so they need no special care.
type ConcurrentRouter interface {
	Router
	ConcurrentRequests() bool
}

// Observer is a read-only per-step hook (tracing, invariant checking).
// It runs after the step commits, before Router.EndStep.
type Observer func(t int, e *Engine)

// Metrics aggregates engine-level counters for one run.
type Metrics struct {
	Steps       int
	Injected    int
	Absorbed    int
	Moves       int
	Deflections [4]int // indexed by DeflectKind
	// MaxInFlight is the peak number of simultaneously active packets.
	MaxInFlight int
	// InjectionWaits counts (packet, step) pairs in which a packet
	// wanted in but its source node was occupied.
	InjectionWaits int
	// FaultBlocked counts (packet, step) pairs whose requested edge was
	// down under the engine's fault model.
	FaultBlocked int
	// FaultStalls counts (packet, step) pairs in which an outage left a
	// node with fewer healthy out-slots than occupants, forcing a
	// packet to hold in place for one step (only possible under a fault
	// model; pure hot-potato never stalls).
	FaultStalls int
}

// TotalDeflections sums all deflection kinds.
func (m *Metrics) TotalDeflections() int {
	return m.Deflections[0] + m.Deflections[1] + m.Deflections[2] + m.Deflections[3]
}

// UnsafeDeflections counts deflections that are not safe in the paper's
// sense; the frame router's Lemma 2.1 predicts zero.
func (m *Metrics) UnsafeDeflections() int {
	return m.Deflections[DeflectUnsafeBackward] + m.Deflections[DeflectForward]
}

// Engine is the synchronous bufferless (hot-potato) engine.
//
// The step loop is organized around *live* state only: an active-packet
// list, a pending-injection list and an occupied-node list replace full
// rescans of the packet and node arrays, so a step costs O(active
// packets + occupied nodes + pending injections) rather than O(N +
// nodes + edges). In the large-N / sparse-activity regime (thousands of
// packets, a few percent in flight) this is the difference between the
// engine spending its time routing and spending it skipping absorbed
// packets. The hot path is also allocation-free in steady state: slot
// scratch, loser buffers, occupancy lists and forward-memory dirty
// lists are all reused, and PathList backing arrays are pre-carved from
// one arena and recycled through a pool across absorptions and
// injections.
//
// The step additionally supports sharded parallel execution
// (SetParallelism): nodes are partitioned into contiguous shards and
// the request/arbitrate/deflect phases run per-shard on a bounded
// worker pool. Slot conflicts are node-local (a slot leaves exactly one
// node) and arbitration randomness is counter-based (rng.go), so shards
// share nothing and the committed trace is byte-identical for any
// worker or shard count. See docs/ALGORITHM.md, "Sharded parallel
// stepping".
type Engine struct {
	G       *graph.Leveled
	Packets []Packet
	Rng     *rand.Rand
	M       Metrics

	// Faults, when non-nil, marks edges as down per step: requests for
	// a downed edge lose (the packet is deflected among healthy slots)
	// and deflections never use downed edges. Set before the first
	// Step. Fault models must be pure functions of (edge, step) — the
	// parallel step path calls them concurrently from shard workers.
	Faults FaultModel

	router     Router
	concurrent bool // router certified via ConcurrentRouter
	observers  []Observer
	now        int
	seed       int64

	// probe/events are the instrumentation hooks (probe.go): nil in the
	// common case, chained fan-outs when attached. snap is the reusable
	// per-step snapshot; lastM the previous step's metrics, diffed to
	// produce per-step deltas without any extra counting on the hot
	// path.
	probe  Probe
	events EventSink
	snap   StepSnapshot
	lastM  Metrics

	// arbSeed keys the counter-based arbitration draws (rng.go); all
	// router-level randomness comes from Rng or router-owned streams.
	arbSeed uint64

	// active lists the in-flight packets; pending lists the packets not
	// yet injected. Both preserve relative packet order (pending starts
	// in ID order; active in injection order) so runs are deterministic
	// per seed.
	active  []PacketID
	pending []PacketID

	// at[v] lists the active packets currently at node v; occupied
	// lists the nodes v with len(at[v]) > 0, each exactly once.
	at       [][]PacketID
	occupied []graph.NodeID

	// prevForward[e] is the packet that traversed edge e forward during
	// the previous step (NoPacket if none); such an edge is a safe
	// backward deflection slot this step. prevTouched/curTouched list
	// the dirty entries of each array so resets touch only those edges.
	prevForward []PacketID
	curForward  []PacketID
	prevTouched []graph.EdgeID
	curTouched  []graph.EdgeID

	// Scratch reused across steps. Slots are indexed 2*edge+direction;
	// epoch stamps avoid clearing the arrays every step (the epoch
	// survives Reset so the stamp arrays never need rewinding).
	epoch      uint32
	slotEpoch  []uint32   // slot -> last epoch the slot was claimed or contested
	slotWinner []PacketID // slot -> current winner (valid when slotEpoch matches)
	slotPrio   []int64    // slot -> winner's priority
	slotKey    []uint64   // slot -> winner's arbitration key (max wins)
	moveEpoch  []uint32   // packet -> epoch of its committed move
	moveSlot   []int32    // packet -> committed slot
	requests   []Request  // indexed by PacketID
	granted    []bool

	// pathPool holds PathList backing arrays — pre-carved from a single
	// arena at construction and surrendered by absorbed packets — so
	// injection never allocates, not even during the startup transient.
	pathPool [][]graph.EdgeID

	// Sharding state (see parallel.go). shards always holds at least
	// one entry: the sequential path runs through shard 0 so that the
	// deflection bookkeeping is identical in both modes.
	nshards int
	shardOf []int32 // node -> shard (contiguous ranges); nil when nshards == 1
	shards  []shardState
	pool    *stepPool // nil when workers <= 1
	wantBuf []bool    // parallel injection-filter decisions, by pending index
	stepT   int       // step number visible to pool workers
}

// stallSlot marks a packet that holds in place for one step because a
// fault left its node without a healthy out-slot.
const stallSlot int32 = -1

// slotIndex packs an (edge, direction) capacity unit into an array
// index.
func slotIndex(e graph.EdgeID, d graph.Direction) int32 {
	return int32(e)<<1 | int32(d)
}

// slotEdge and slotDir unpack a slot index.
func slotEdge(s int32) graph.EdgeID   { return graph.EdgeID(s >> 1) }
func slotDir(s int32) graph.Direction { return graph.Direction(s & 1) }

// NewEngine builds an engine for the problem with the given router and
// seed. Packet i corresponds to path i of the problem. A packet with an
// empty preselected path (source == destination) is absorbed
// immediately at step 0 without ever becoming active: it occupies no
// node and the router never sees a Request for it.
func NewEngine(p *workload.Problem, r Router, seed int64) *Engine {
	e := &Engine{
		G:           p.G,
		Rng:         rand.New(rand.NewSource(seed)),
		router:      r,
		prevForward: make([]PacketID, p.G.NumEdges()),
		curForward:  make([]PacketID, p.G.NumEdges()),
	}
	if cr, ok := r.(ConcurrentRouter); ok && cr.ConcurrentRequests() {
		e.concurrent = true
	}
	// Node occupancy is bounded by degree (at most one arrival per
	// incident edge per step; injection requires an empty node), so
	// every per-node occupancy list is carved out of one flat backing
	// array of total size 2|E|. Lists then never grow beyond their
	// segment and the hot path never allocates for a newly visited
	// node.
	e.at = make([][]PacketID, p.G.NumNodes())
	occBacking := make([]PacketID, 2*p.G.NumEdges())
	for v, off := 0, 0; v < p.G.NumNodes(); v++ {
		d := p.G.Node(graph.NodeID(v)).Degree()
		e.at[v] = occBacking[off : off : off+d]
		off += d
	}
	e.slotEpoch = make([]uint32, 2*p.G.NumEdges())
	e.slotWinner = make([]PacketID, 2*p.G.NumEdges())
	e.slotPrio = make([]int64, 2*p.G.NumEdges())
	e.slotKey = make([]uint64, 2*p.G.NumEdges())
	e.moveEpoch = make([]uint32, p.N())
	e.moveSlot = make([]int32, p.N())
	// Scratch lists are preallocated at their tight bounds so steady
	// state performs no growth reallocations at all.
	e.active = make([]PacketID, 0, p.N())
	e.occupied = make([]graph.NodeID, 0, min(p.N(), p.G.NumNodes()))
	e.curTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	e.prevTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	for i := range e.prevForward {
		e.prevForward[i] = NoPacket
		e.curForward[i] = NoPacket
	}
	e.Packets = make([]Packet, p.N())
	e.pending = make([]PacketID, 0, p.N())
	for i, path := range p.Set.Paths {
		e.Packets[i].Preselected = path
	}
	// Pre-carve PathList backing from one arena, sized at the longest
	// preselected path plus prepend headroom, so the injection wave
	// allocates nothing (previously the first borrow of every packet
	// was a fresh allocation — ~N allocs charged to the startup
	// transient; see BENCH_engine.json history).
	maxLen := 0
	for _, path := range p.Set.Paths {
		if len(path) > maxLen {
			maxLen = len(path)
		}
	}
	unit := maxLen + 8
	arena := make([]graph.EdgeID, p.N()*unit)
	e.pathPool = make([][]graph.EdgeID, 0, p.N())
	for i := 0; i < p.N(); i++ {
		e.pathPool = append(e.pathPool, arena[i*unit:i*unit:(i+1)*unit])
	}
	e.requests = make([]Request, p.N())
	e.granted = make([]bool, p.N())
	e.wantBuf = make([]bool, p.N())
	e.setShards(1, 1)
	e.Reset(seed)
	return e
}

// Reset rewinds the engine to step 0 with a new seed, reusing every
// allocation: the flat occupancy backing, the path-arena pool, slot
// scratch and the shard/worker configuration all survive, so a
// Monte-Carlo worker can run thousands of trials on one engine without
// rebuilding it (see mc.Run). Observers are per-run attachments and are
// cleared; the router is re-initialized through Router.Init. Resetting
// an engine mid-run is allowed.
func (e *Engine) Reset(seed int64) {
	e.seed = seed
	e.Rng.Seed(seed)
	e.arbSeed = arbStream(seed)
	e.M = Metrics{}
	e.now = 0
	e.observers = e.observers[:0]
	// Probes and event sinks are per-run attachments like observers:
	// cleared here, re-attached by the caller after Reset.
	e.probe = nil
	e.events = nil
	e.lastM = Metrics{}
	// The epoch deliberately keeps counting across runs: slotEpoch and
	// moveEpoch entries from the previous run are stale by construction
	// and never need clearing. Forward memory and occupancy are rolled
	// back through their dirty lists, which also covers engines reset
	// in the middle of a run.
	for _, ed := range e.prevTouched {
		e.prevForward[ed] = NoPacket
	}
	for _, ed := range e.curTouched {
		e.curForward[ed] = NoPacket
	}
	e.prevTouched = e.prevTouched[:0]
	e.curTouched = e.curTouched[:0]
	for _, v := range e.occupied {
		e.at[v] = e.at[v][:0]
	}
	e.occupied = e.occupied[:0]
	e.active = e.active[:0]
	e.pending = e.pending[:0]
	for i := range e.Packets {
		p := &e.Packets[i]
		if p.PathList != nil {
			e.pathPool = append(e.pathPool, p.PathList[:0])
		}
		*p = Packet{
			ID:          PacketID(i),
			Cur:         graph.NoNode,
			Src:         graph.NoNode,
			Dst:         graph.NoNode,
			Preselected: p.Preselected,
			InjectTime:  -1,
			AbsorbTime:  -1,
			ArrivalEdge: graph.NoEdge,
		}
		if len(p.Preselected) > 0 {
			p.Src = e.G.PathSource(p.Preselected)
			p.Dst = e.G.PathDest(p.Preselected)
			e.pending = append(e.pending, p.ID)
		} else {
			// Zero-length path: the packet is already where it is
			// going. Absorb it up front so no Request can ever index an
			// empty PathList.
			p.Absorbed = true
			p.InjectTime = 0
			p.AbsorbTime = 0
			e.M.Injected++
			e.M.Absorbed++
		}
	}
	e.router.Init(e)
}

// Seed returns the seed of the current run. Routers can derive
// order-independent randomness streams from it via StreamSeed.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current step number (the step about to execute, or
// just executed inside observers).
func (e *Engine) Now() int { return e.now }

// At returns the active packets at node v (engine-owned; do not
// mutate).
func (e *Engine) At(v graph.NodeID) []PacketID { return e.at[v] }

// InFlight returns the number of currently active packets.
func (e *Engine) InFlight() int { return len(e.active) }

// Active returns the in-flight packets in injection order
// (engine-owned; do not mutate). Routers and observers should iterate
// this instead of the full packet array when they only care about live
// packets.
func (e *Engine) Active() []PacketID { return e.active }

// AddObserver registers a per-step hook.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// Done reports whether every packet has been absorbed.
func (e *Engine) Done() bool {
	return e.M.Absorbed == len(e.Packets)
}

// Run executes steps until all packets are absorbed or maxSteps is
// reached, and returns the number of steps executed and whether the run
// completed.
func (e *Engine) Run(maxSteps int) (int, bool) {
	for e.now < maxSteps && !e.Done() {
		e.Step()
	}
	return e.now, e.Done()
}

// addAt places an active packet at node v, keeping the occupied-node
// list consistent.
func (e *Engine) addAt(v graph.NodeID, pid PacketID) {
	if len(e.at[v]) == 0 {
		e.occupied = append(e.occupied, v)
	}
	e.at[v] = append(e.at[v], pid)
}

// borrowPath returns a buffer holding a copy of pre, reusing the
// packet's previous buffer or one pooled from the arena / an absorbed
// packet.
func (e *Engine) borrowPath(buf []graph.EdgeID, pre graph.Path) []graph.EdgeID {
	if buf == nil && len(e.pathPool) > 0 {
		buf = e.pathPool[len(e.pathPool)-1]
		e.pathPool = e.pathPool[:len(e.pathPool)-1]
	}
	return append(buf[:0], pre...)
}

// Step executes one synchronous time step.
func (e *Engine) Step() {
	t := e.now
	e.stepT = t

	// Phase 1: injection in isolation. A packet enters only when its
	// router wants it in and its source node holds no active packet.
	// Only never-injected packets are scanned; injected ones leave the
	// pending list for good. With a worker pool and a certified router
	// the WantInject sweep — the dominant per-step cost early in a
	// large staggered run — is fanned out over index chunks; the commit
	// below then walks the pending list in order, so the admitted set
	// and all occupancy interactions are identical in both modes.
	if len(e.pending) > 0 {
		parFilter := e.pool != nil && e.concurrent && len(e.pending) >= parallelInjectMin
		if parFilter {
			e.pool.runRegion(modeInjectFilter, e.nshards)
		}
		keep := e.pending[:0]
		for i, pid := range e.pending {
			p := &e.Packets[pid]
			want := false
			if parFilter {
				want = e.wantBuf[i]
			} else {
				want = e.router.WantInject(t, p)
			}
			if !want {
				keep = append(keep, pid)
				continue
			}
			if len(e.at[p.Src]) > 0 {
				e.M.InjectionWaits++
				keep = append(keep, pid)
				continue
			}
			p.Active = true
			p.Cur = p.Src
			p.InjectTime = t
			p.PathList = e.borrowPath(p.PathList, p.Preselected)
			p.ArrivalEdge = graph.NoEdge
			e.addAt(p.Src, pid)
			e.active = append(e.active, pid)
			e.M.Injected++
			if e.events != nil {
				e.events.RecordEvent(t, pid, EventInject, int32(p.Src))
			}
		}
		e.pending = keep
	}
	if len(e.active) > e.M.MaxInFlight {
		e.M.MaxInFlight = len(e.active)
	}

	// Phases 2+3: collect requests, resolve per-slot winners, and
	// assign deflection slots to losers. All three are node-local —
	// every contender for a slot stands at the single node the slot
	// leaves — so with a worker pool they run per-shard; the arbitration
	// keys (rng.go) make the winner independent of enumeration order.
	// Router callbacks for deflections are recorded per shard and
	// replayed sequentially in occupied-node order below, so the
	// router-visible callback order is identical for every worker and
	// shard count.
	e.epoch++
	for i := range e.shards {
		e.shards[i].reset()
	}
	switch {
	case e.pool != nil && e.concurrent:
		// Fully parallel: requests, arbitration and deflection all
		// sharded.
		e.scatterOccupied()
		e.pool.runRegion(modeShardStep, e.nshards)
	case e.pool != nil:
		// Router not certified for concurrent Request: sweep requests
		// sequentially in active order (preserving any sequential
		// generator the router draws from), then shard the deflection
		// phase, which performs no router calls.
		sh := &e.shards[0]
		for _, pid := range e.active {
			e.collectRequest(t, pid, sh)
		}
		e.markWinners(sh)
		e.scatterOccupied()
		// Winner marks were staged into shard 0; hand each shard its
		// own deflection record list.
		e.pool.runRegion(modeShardDeflect, e.nshards)
	default:
		// Sequential: one shard, active-order sweep, in-place node
		// order — exactly the parallel result by construction.
		sh := &e.shards[0]
		for _, pid := range e.active {
			e.collectRequest(t, pid, sh)
		}
		e.markWinners(sh)
		for _, v := range e.occupied {
			e.deflectLosers(t, v, sh)
		}
	}

	// Merge: fold per-shard counters and replay deflection callbacks in
	// occupied-node order. Records within a shard appear in that
	// shard's node order, and scatter preserves relative order, so
	// walking the original occupied list with per-shard cursors
	// reconstructs the exact sequential callback order.
	stepExcited := 0
	if e.nshards == 1 {
		sh := &e.shards[0]
		e.M.FaultBlocked += sh.faultBlocked
		stepExcited = sh.excited
		for _, rec := range sh.deflects {
			e.applyDeflectRecord(t, rec)
		}
	} else {
		for i := range e.shards {
			e.M.FaultBlocked += e.shards[i].faultBlocked
			stepExcited += e.shards[i].excited
		}
		for _, v := range e.occupied {
			sh := &e.shards[e.shardOf[v]]
			for sh.cursor < len(sh.deflects) && e.Packets[sh.deflects[sh.cursor].pid].Cur == v {
				e.applyDeflectRecord(t, sh.deflects[sh.cursor])
				sh.cursor++
			}
		}
	}

	// Phase 4: commit all moves simultaneously. Forward-memory entries
	// from the previous use of the curForward array are cleared via its
	// dirty list instead of a full edge sweep.
	for _, ed := range e.curTouched {
		e.curForward[ed] = NoPacket
	}
	e.curTouched = e.curTouched[:0]
	for _, pid := range e.active {
		if e.moveEpoch[pid] != e.epoch {
			panic(fmt.Sprintf("sim: step %d: active packet %d has no move (hot-potato requires all packets to leave)", t, pid))
		}
		if e.moveSlot[pid] == stallSlot {
			continue
		}
		e.applyMove(t, &e.Packets[pid], e.moveSlot[pid])
	}

	// Phase 5: rebuild occupancy from the surviving actives and roll
	// forward-traversal memory, touching only live nodes.
	for _, v := range e.occupied {
		e.at[v] = e.at[v][:0]
	}
	e.occupied = e.occupied[:0]
	keep := e.active[:0]
	for _, pid := range e.active {
		p := &e.Packets[pid]
		if !p.Active {
			continue // absorbed this step
		}
		keep = append(keep, pid)
		e.addAt(p.Cur, pid)
	}
	e.active = keep
	e.prevForward, e.curForward = e.curForward, e.prevForward
	e.prevTouched, e.curTouched = e.curTouched, e.prevTouched

	e.now++
	e.M.Steps = e.now
	if e.probe != nil {
		e.emitSnapshot(t, stepExcited)
	}
	for _, o := range e.observers {
		o(t, e)
	}
	e.router.EndStep(t, e)
}

// collectRequest gathers one packet's request and folds it into the
// slot arbitration. The winner of an equal-priority conflict is the
// contender with the largest counter-based arbitration key — a
// commutative rule, so any enumeration order yields the same winner
// (each of k contenders wins with probability 1/k; see rng.go).
func (e *Engine) collectRequest(t int, pid PacketID, sh *shardState) {
	p := &e.Packets[pid]
	req := e.router.Request(t, p)
	if err := e.checkRequest(p, req); err != nil {
		panic(fmt.Sprintf("sim: step %d: %v", t, err))
	}
	e.requests[pid] = req
	e.granted[pid] = false
	if e.probe != nil && req.Priority >= ExcitedPriority {
		sh.excited++
	}
	if e.Faults != nil && e.Faults(req.Edge, t) {
		sh.faultBlocked++
		return
	}
	s := slotIndex(req.Edge, req.Dir)
	k := arbKey(e.arbSeed, t, s, pid)
	if e.slotEpoch[s] != e.epoch {
		e.slotEpoch[s] = e.epoch
		e.slotWinner[s] = pid
		e.slotPrio[s] = req.Priority
		e.slotKey[s] = k
		sh.contested = append(sh.contested, s)
		return
	}
	switch {
	case req.Priority > e.slotPrio[s]:
		e.slotWinner[s] = pid
		e.slotPrio[s] = req.Priority
		e.slotKey[s] = k
	case req.Priority == e.slotPrio[s]:
		if k > e.slotKey[s] || (k == e.slotKey[s] && pid > e.slotWinner[s]) {
			e.slotWinner[s] = pid
			e.slotKey[s] = k
		}
	}
}

// markWinners records the committed move of every contested slot's
// winner; slotEpoch doubles as the used-slot marker for deflection.
func (e *Engine) markWinners(sh *shardState) {
	for _, s := range sh.contested {
		w := e.slotWinner[s]
		e.granted[w] = true
		e.moveEpoch[w] = e.epoch
		e.moveSlot[w] = s
	}
}

// applyDeflectRecord commits one deferred deflection (or fault stall):
// counters and the router callback, in deterministic merge order.
func (e *Engine) applyDeflectRecord(t int, rec deflectRec) {
	if rec.slot == stallSlot {
		e.M.FaultStalls++
		if e.events != nil {
			e.events.RecordEvent(t, rec.pid, EventStall, 0)
		}
		return
	}
	e.M.Deflections[rec.kind]++
	if e.events != nil {
		e.events.RecordEvent(t, rec.pid, EventDeflect, int32(rec.kind))
	}
	e.router.OnDeflect(t, &e.Packets[rec.pid], slotEdge(rec.slot), rec.kind)
}

// checkRequest validates that a request leaves the packet's node.
func (e *Engine) checkRequest(p *Packet, req Request) error {
	if req.Edge < 0 || int(req.Edge) >= e.G.NumEdges() {
		return fmt.Errorf("packet %d requested unknown edge %d", p.ID, req.Edge)
	}
	ed := e.G.Edge(req.Edge)
	if ed.From != p.Cur && ed.To != p.Cur {
		return fmt.Errorf("packet %d at node %d requested non-incident edge %d", p.ID, p.Cur, req.Edge)
	}
	if e.G.DirectionFrom(req.Edge, p.Cur) != req.Dir {
		return fmt.Errorf("packet %d at node %d requested edge %d in direction %s which does not leave the node",
			p.ID, p.Cur, req.Edge, req.Dir)
	}
	return nil
}

// deflectLosers assigns outgoing slots to the packets at node v whose
// requests were not granted, preferring (1) the reverse of each
// packet's own arrival, (2) safe backward slots recycled from the
// previous step's forward traversals, (3) any backward slot, (4) any
// forward slot. Under the paper's preconditions only (1) and (2) occur.
// Slot state is node-local, so shards may run this concurrently for
// their own nodes; router callbacks are deferred into sh.deflects and
// replayed at the merge.
func (e *Engine) deflectLosers(t int, v graph.NodeID, sh *shardState) {
	sh.loserBuf = sh.loserBuf[:0]
	for _, pid := range e.at[v] {
		if !e.granted[pid] {
			sh.loserBuf = append(sh.loserBuf, pid)
		}
	}
	if len(sh.loserBuf) == 0 {
		return
	}
	losers := sh.loserBuf
	node := e.G.Node(v)

	free := func(s int32) bool {
		if e.slotEpoch[s] == e.epoch {
			return false
		}
		return e.Faults == nil || !e.Faults(slotEdge(s), t)
	}
	assign := func(pid PacketID, s int32, kind DeflectKind) {
		e.slotEpoch[s] = e.epoch
		e.moveEpoch[pid] = e.epoch
		e.moveSlot[pid] = s
		e.Packets[pid].Deflections++
		sh.deflects = append(sh.deflects, deflectRec{pid: pid, slot: s, kind: kind})
	}

	// Pass 1: own arrival reverse.
	remaining := losers[:0]
	for _, pid := range losers {
		p := &e.Packets[pid]
		if p.ArrivalEdge != graph.NoEdge {
			d := p.ArrivalDir.Reverse()
			s := slotIndex(p.ArrivalEdge, d)
			if e.G.EndpointAt(p.ArrivalEdge, d.Reverse()) == v && free(s) {
				assign(pid, s, DeflectArrivalReverse)
				continue
			}
		}
		remaining = append(remaining, pid)
	}
	losers = remaining

	// Pass 2: safe backward (edges forward-traversed last step).
	remaining = losers[:0]
	for _, pid := range losers {
		var chosen int32
		found := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) && e.prevForward[ed] != NoPacket {
				chosen, found = s, true
				break
			}
		}
		if found {
			assign(pid, chosen, DeflectSafeBackward)
		} else {
			remaining = append(remaining, pid)
		}
	}
	losers = remaining

	// Pass 3: any backward; Pass 4: any forward.
	for _, pid := range losers {
		assigned := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) {
				assign(pid, s, DeflectUnsafeBackward)
				assigned = true
				break
			}
		}
		if assigned {
			continue
		}
		for _, ed := range node.Up {
			s := slotIndex(ed, graph.Forward)
			if free(s) {
				assign(pid, s, DeflectForward)
				assigned = true
				break
			}
		}
		if !assigned {
			if e.Faults != nil {
				// An outage consumed the node's slack: the packet holds
				// for one step (stallSlot), the bufferless model's local
				// escape hatch under faults.
				e.moveEpoch[pid] = e.epoch
				e.moveSlot[pid] = stallSlot
				sh.deflects = append(sh.deflects, deflectRec{pid: pid, slot: stallSlot})
				continue
			}
			panic(fmt.Sprintf("sim: step %d: node %d: no free slot for deflected packet %d (capacity violated)", t, v, pid))
		}
	}
}

// applyMove commits one traversal and updates path bookkeeping: a
// traversal of the path head pops it, anything else prepends (the
// paper's deflection rule, which also covers wait-state oscillation).
// Pops shift in place rather than re-slicing so the backing array's
// origin is stable and the full capacity returns to the pool on
// absorption.
func (e *Engine) applyMove(t int, p *Packet, s int32) {
	ed, dir := slotEdge(s), slotDir(s)
	dest := e.G.EndpointAt(ed, dir)
	onHead := len(p.PathList) > 0 && p.PathList[0] == ed
	if onHead {
		n := copy(p.PathList, p.PathList[1:])
		p.PathList = p.PathList[:n]
	} else {
		p.PathList = append(p.PathList, 0)
		copy(p.PathList[1:], p.PathList)
		p.PathList[0] = ed
	}
	p.Cur = dest
	p.ArrivalEdge = ed
	p.ArrivalDir = dir
	if dir == graph.Forward {
		p.ForwardMoves++
		e.curForward[ed] = p.ID
		e.curTouched = append(e.curTouched, ed)
	} else {
		p.BackwardMoves++
	}
	e.M.Moves++
	if e.granted[p.ID] {
		e.router.OnMove(t, p)
	}
	if p.Cur == p.Dst {
		p.Active = false
		p.Absorbed = true
		p.AbsorbTime = t + 1
		e.M.Absorbed++
		if cap(p.PathList) > 0 {
			e.pathPool = append(e.pathPool, p.PathList[:0])
			p.PathList = nil
		}
		e.router.OnAbsorb(t, p)
		if e.events != nil {
			e.events.RecordEvent(t, p.ID, EventAbsorb, int32(p.Dst))
		}
	}
}
