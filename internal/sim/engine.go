package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Router is a hot-potato routing algorithm driven by the Engine. The
// engine owns packet motion, conflict resolution and deflection; the
// router owns injection timing, per-packet requests (edge + priority)
// and its own state machine, advanced through the On* notifications.
type Router interface {
	// Name identifies the algorithm in reports.
	Name() string

	// Init is called once before the first step, and again on every
	// Engine.Reset. A router must (re)initialize all of its per-run
	// state here.
	Init(e *Engine)

	// WantInject reports whether the (not yet injected) packet should
	// be injected at step t. The engine additionally requires the
	// source node to be free of active packets (injection in
	// isolation); if it is not, the packet stays out regardless.
	WantInject(t int, p *Packet) bool

	// Request returns the desired traversal for active packet p at
	// step t. The returned edge must leave p.Cur.
	Request(t int, p *Packet) Request

	// OnDeflect tells the router that p lost its request and was
	// deflected along edge e (kind classifies the slot).
	OnDeflect(t int, p *Packet, e graph.EdgeID, kind DeflectKind)

	// OnMove tells the router that p's own request was granted.
	OnMove(t int, p *Packet)

	// OnAbsorb tells the router that p reached its destination.
	OnAbsorb(t int, p *Packet)

	// EndStep is called after every step commits.
	EndStep(t int, e *Engine)
}

// ConcurrentRouter is an optional Router extension. A router returning
// true from ConcurrentRequests certifies that its WantInject and
// Request methods are safe to call concurrently from multiple
// goroutines on distinct packets, and that their observable behavior
// is independent of call order: no draws from a shared sequential
// generator (use counter-based randomness such as sim.CoinFloat), no
// cross-packet writes, and shared counters only through atomics.
// Certified Request/WantInject must also not read engine occupancy
// (At, InFlight, Active): shard workers clear their own nodes'
// occupancy at the tail of the fused resolve region (barrier fusion),
// so occupancy is undefined while requests are in flight. The engine's
// parallel step path invokes Request from shard workers (and
// WantInject from injection-filter workers) only for certified
// routers; every other router keeps the sequential request sweep while
// still getting sharded deflection. The remaining callbacks (OnDeflect,
// OnMove, OnAbsorb, EndStep) are always invoked sequentially in a
// deterministic order, so they need no special care.
type ConcurrentRouter interface {
	Router
	ConcurrentRequests() bool
}

// InjectionPlanner is an optional Router extension. A router
// implementing it certifies a per-packet lower bound on injection
// eligibility that is fixed at Init time: WantInject(t, p) must return
// false for every step t < InjectStep(p). The engine uses the bound to
// park not-yet-eligible packets in a time-sorted release queue and
// sweep only released packets each step, turning the per-step injection
// scan from O(all pending) into O(eligible) — on a large staggered
// workload this is the difference between the step paying for every
// packet in the problem and paying only for the handful near admission.
//
// The bound is an optimization gate, not a schedule: WantInject is
// still consulted for every released packet, so a conservative bound
// (always 0) is always correct and merely forfeits the skipping. That
// also makes embedding safe — a wrapper that overrides WantInject with
// a tighter schedule but inherits InjectStep() == 0 from its embedded
// router behaves identically to the unplanned path. Wrappers should
// still override InjectStep to regain the skipping.
//
// InjectStep is called once per packet per run, on the stepping
// goroutine, after Router.Init.
type InjectionPlanner interface {
	Router
	// InjectStep returns the earliest step at which WantInject may
	// report true for the (not yet injected) packet. Negative values are
	// treated as 0.
	InjectStep(p *Packet) int
}

// Observer is a read-only per-step hook (tracing, invariant checking).
// It runs after the step commits, before Router.EndStep.
type Observer func(t int, e *Engine)

// Metrics aggregates engine-level counters for one run.
type Metrics struct {
	Steps       int
	Injected    int
	Absorbed    int
	Moves       int
	Deflections [4]int // indexed by DeflectKind
	// MaxInFlight is the peak number of simultaneously active packets.
	MaxInFlight int
	// InjectionWaits counts (packet, step) pairs in which a packet
	// wanted in but its source node was occupied.
	InjectionWaits int
	// FaultBlocked counts (packet, step) pairs whose requested edge was
	// down under the engine's fault model.
	FaultBlocked int
	// FaultStalls counts (packet, step) pairs in which an outage left a
	// node with fewer healthy out-slots than occupants, forcing a
	// packet to hold in place for one step (only possible under a fault
	// model; pure hot-potato never stalls).
	FaultStalls int
}

// TotalDeflections sums all deflection kinds.
func (m *Metrics) TotalDeflections() int {
	return m.Deflections[0] + m.Deflections[1] + m.Deflections[2] + m.Deflections[3]
}

// UnsafeDeflections counts deflections that are not safe in the paper's
// sense; the frame router's Lemma 2.1 predicts zero.
func (m *Metrics) UnsafeDeflections() int {
	return m.Deflections[DeflectUnsafeBackward] + m.Deflections[DeflectForward]
}

// Engine is the synchronous bufferless (hot-potato) engine.
//
// The step loop is organized around *live* state only: an active-packet
// list, a pending-injection list and an occupied-node list replace full
// rescans of the packet and node arrays, so a step costs O(active
// packets + occupied nodes + pending injections) rather than O(N +
// nodes + edges). In the large-N / sparse-activity regime (thousands of
// packets, a few percent in flight) this is the difference between the
// engine spending its time routing and spending it skipping absorbed
// packets. The hot path is also allocation-free in steady state: slot
// scratch, loser buffers, occupancy lists and forward-memory dirty
// lists are all reused, and PathList backing arrays are pre-carved from
// one arena and recycled through a pool across absorptions and
// injections.
//
// The step additionally supports sharded parallel execution
// (SetParallelism): the occupied-node list — the materialized active
// window — is partitioned into equal contiguous blocks each step and
// the request/arbitrate/deflect phases (plus the fused occupancy
// clear) run per-block on a bounded worker pool. Slot conflicts are
// node-local (a slot leaves exactly one node) and arbitration
// randomness is counter-based (rng.go), so shards share nothing and
// the committed trace is byte-identical for any worker or shard count.
// See docs/ALGORITHM.md, "Sharded parallel stepping".
type Engine struct {
	G       *graph.Leveled
	Packets []Packet
	Rng     *rand.Rand
	M       Metrics

	// Faults, when non-nil, marks edges as down per step: requests for
	// a downed edge lose (the packet is deflected among healthy slots)
	// and deflections never use downed edges. Set before the first
	// Step. Fault models must be pure functions of (edge, step) — the
	// parallel step path calls them concurrently from shard workers.
	Faults FaultModel

	router     Router
	concurrent bool // router certified via ConcurrentRouter
	observers  []Observer
	now        int
	seed       int64

	// probe/events are the instrumentation hooks (probe.go): nil in the
	// common case, chained fan-outs when attached. snap is the reusable
	// per-step snapshot; lastM the previous step's metrics, diffed to
	// produce per-step deltas without any extra counting on the hot
	// path.
	probe  Probe
	events EventSink
	snap   StepSnapshot
	lastM  Metrics

	// arbSeed keys the counter-based arbitration draws (rng.go); all
	// router-level randomness comes from Rng or router-owned streams.
	arbSeed uint64

	// active lists the in-flight packets; pending lists the packets not
	// yet injected. Both preserve relative packet order (pending starts
	// in ID order; active in injection order) so runs are deterministic
	// per seed.
	active  []PacketID
	pending []PacketID

	// Injection release queue (InjectionPlanner routers). injSchedule
	// packs (releaseStep<<32 | packetID), sorted ascending, built once
	// per run after Router.Init; injCursor is the next unreleased entry.
	// Released packets merge into the ID-ordered pending list through
	// mergeBuf, so the admission sweep and all occupancy interactions
	// are byte-identical to the legacy full sweep — the queue only
	// determines when a packet first appears in the sweep. legacyInject
	// (test hook, see SetLegacyInjectForTest) disables the queue and
	// restores the full pending sweep for differential testing.
	planner      InjectionPlanner
	injSchedule  []uint64
	injCursor    int
	mergeBuf     []PacketID
	legacyInject bool

	// Per-node occupancy in flat SoA form: node v's active packets are
	// atList[atOff[v] : atOff[v]+atN[v]], where each node owns a
	// degree-sized segment of atList (occupancy never exceeds degree).
	// Splitting offsets from counts matters: the occupancy rebuild in
	// phase 5 touches ~2 scattered nodes per moving packet (clear + add),
	// and with counts packed two bytes per node the whole count array
	// stays cache-resident even on 50k-node networks, where slice
	// headers (24 bytes/node) made every touch a cold miss. occupied
	// lists the nodes v with atN[v] > 0, each exactly once; occBits
	// mirrors atN[v] > 0 as a bitset so the injection-isolation probe
	// costs one L1-resident bit test.
	atOff    []int32
	atN      []uint16
	atList   []PacketID
	occupied []graph.NodeID
	occBits  []uint64

	// Forward-traversal memory as per-edge bitsets: bit e of prevFwdBits
	// is set iff some packet traversed edge e forward during the
	// previous step — such an edge is a safe backward deflection slot
	// this step. The deflection phase only ever asks the boolean, so a
	// bitset (1 bit/edge, L1-resident on 100k-edge networks) replaces
	// the old 4-bytes-per-edge PacketID array. prevTouched/curTouched
	// list the dirty edges so per-step resets touch only those bits.
	// Bits are written at sequential commit points only and read-only
	// during the sharded phases, so sharing words across shards is safe.
	prevFwdBits []uint64
	curFwdBits  []uint64
	prevTouched []graph.EdgeID
	curTouched  []graph.EdgeID

	// Per-level active-packet census, maintained incrementally (O(1)
	// per injection/move/absorption): lvlOf mirrors each active packet's
	// current level, levelCount the number of active packets per level,
	// and winLo/winHi bound the non-empty level band (kept stale-wide,
	// trimmed at read — see Window). The frame schedule guarantees the
	// band is narrow, so consumers can skip the provably idle levels of
	// a deep network entirely. lvlNodeLo/lvlNodeHi are the (immutable)
	// node-ID bounds of each level, giving Window() a node-ID range for
	// the wide occupancy clears (clearOccupancy). snapLo/snapHi remember
	// the window last written into the probe snapshot's census so the
	// next fill zeroes only that band, not the whole depth.
	lvlOf      []int16
	levelCount []int32
	winLo      int
	winHi      int
	lvlNodeLo  []int32
	lvlNodeHi  []int32
	snapLo     int
	snapHi     int

	// Scratch reused across steps. Slots are indexed 2*edge+direction,
	// but slot state is never stored per slot: a slot's contenders all
	// stand at the single node it leaves, so arbitration and deflection
	// resolve node by node (resolveNode) against the requesting packets'
	// flat request arrays and a degree-bounded used-slot list — L1-sized
	// scratch, where a 2|E|-entry slot array on a large network meant one
	// cold cache miss per request. reqSlot/reqPrio are written by
	// collectRequest (in active order, i.e. near-sequentially) and read
	// back per node; moves carries each packet's committed traversal,
	// stamped with the step epoch (the epoch survives Reset so the array
	// never needs rewinding).
	epoch   uint32
	reqSlot []int32   // indexed by PacketID; blockedSlot when fault-blocked
	reqPrio []int64   // indexed by PacketID
	moves   []moveRec // indexed by PacketID
	granted []bool

	// pathPool holds PathList backing arrays — pre-carved from a single
	// arena at construction and surrendered by absorbed packets — so
	// injection never allocates, not even during the startup transient.
	// A live packet's PathList is a window into its borrowed segment
	// (pathBase), positioned at pathHead: the path is injected at the
	// segment's tail so that pops advance the window head and prepends
	// retreat it, both O(1) re-slices where shifting in place cost a
	// memmove of the remaining path on every single move. A prepend that
	// exhausts the front slack repacks the segment (repackPath), which
	// under the paper's preconditions never happens after the injection
	// headroom is spent.
	pathPool [][]graph.EdgeID
	pathBase [][]graph.EdgeID
	pathHead []int32

	// On-path move acceleration. preNodes holds each packet's
	// preselected node sequence (row i at [i*preUnit, ...], one node per
	// path position); while a packet is on its preselected path
	// (offPath == 0, meaning PathList == Preselected[preIdx:]), the
	// destination of a head pop is preNodes[preIdx+1] — a sequential
	// per-packet read — and the head direction is Forward, so the common
	// case touches the scattered edge-endpoint array not at all.
	// offPath counts prepended (deflection/oscillation) entries at the
	// window front; retraceDirs stacks their head directions one bit
	// each, and retraceDeep marks stacks that overflowed 64 entries,
	// falling back to a graph lookup until the stack drains.
	preNodes    []graph.NodeID
	preUnit     int
	preIdx      []int32
	offPath     []int32
	retraceDirs []uint64
	retraceDeep []bool

	// Sharding state (see parallel.go). shards always holds at least
	// one entry: the sequential path runs through shard 0 so that the
	// deflection bookkeeping is identical in both modes. Shards are
	// per-step blocks of the occupied list (partitionOccupied), so
	// there is no static node-to-shard map to maintain.
	nshards int
	shards  []shardState
	pool    *stepPool // nil when workers <= 1
	wantBuf []bool    // parallel injection-filter decisions, by pending index
	stepT   int       // step number visible to pool workers
}

// stallSlot marks a packet that holds in place for one step because a
// fault left its node without a healthy out-slot.
const stallSlot int32 = -1

// slotIndex packs an (edge, direction) capacity unit into an array
// index.
func slotIndex(e graph.EdgeID, d graph.Direction) int32 {
	return int32(e)<<1 | int32(d)
}

// slotEdge and slotDir unpack a slot index.
func slotEdge(s int32) graph.EdgeID   { return graph.EdgeID(s >> 1) }
func slotDir(s int32) graph.Direction { return graph.Direction(s & 1) }

// blockedSlot marks a request rejected by the fault schedule in
// reqSlot; the packet holds no claim and falls through to deflection.
const blockedSlot int32 = -2

// moveRec is the per-packet committed move: epoch stamp + slot.
type moveRec struct {
	epoch uint32
	slot  int32
}

// bitGet/bitSet/bitClear operate on the engine's uint64 bitsets.
func bitGet(b []uint64, i int32) bool { return b[uint32(i)>>6]&(1<<(uint32(i)&63)) != 0 }
func bitSet(b []uint64, i int32)      { b[uint32(i)>>6] |= 1 << (uint32(i) & 63) }
func bitClear(b []uint64, i int32)    { b[uint32(i)>>6] &^= 1 << (uint32(i) & 63) }

// injPack packs a (releaseStep, packet) pair so that slices.Sort on the
// packed values yields (release, then ID) order.
func injPack(rel int, pid PacketID) uint64 {
	if rel < 0 {
		rel = 0
	}
	if rel > 1<<31-1 {
		rel = 1<<31 - 1
	}
	return uint64(rel)<<32 | uint64(uint32(pid))
}

// NewEngine builds an engine for the problem with the given router and
// seed. Packet i corresponds to path i of the problem. A packet with an
// empty preselected path (source == destination) is absorbed
// immediately at step 0 without ever becoming active: it occupies no
// node and the router never sees a Request for it.
func NewEngine(p *workload.Problem, r Router, seed int64) *Engine {
	e := &Engine{
		G:           p.G,
		Rng:         rand.New(rand.NewSource(seed)),
		router:      r,
		prevFwdBits: make([]uint64, (p.G.NumEdges()+63)/64),
		curFwdBits:  make([]uint64, (p.G.NumEdges()+63)/64),
		occBits:     make([]uint64, (p.G.NumNodes()+63)/64),
	}
	if cr, ok := r.(ConcurrentRouter); ok && cr.ConcurrentRequests() {
		e.concurrent = true
	}
	// Node occupancy is bounded by degree (at most one arrival per
	// incident edge per step; injection requires an empty node), so
	// every per-node occupancy list is carved out of one flat backing
	// array of total size 2|E|. Lists then never grow beyond their
	// segment and the hot path never allocates for a newly visited
	// node.
	e.atOff = make([]int32, p.G.NumNodes())
	e.atN = make([]uint16, p.G.NumNodes())
	e.atList = make([]PacketID, 2*p.G.NumEdges())
	for v, off := 0, 0; v < p.G.NumNodes(); v++ {
		d := p.G.Node(graph.NodeID(v)).Degree()
		if d >= 1<<16 {
			panic("sim: node degree exceeds the engine's uint16 occupancy counts")
		}
		e.atOff[v] = int32(off)
		off += d
	}
	e.reqSlot = make([]int32, p.N())
	e.reqPrio = make([]int64, p.N())
	e.moves = make([]moveRec, p.N())
	// Scratch lists are preallocated at their tight bounds so steady
	// state performs no growth reallocations at all.
	e.active = make([]PacketID, 0, p.N())
	e.occupied = make([]graph.NodeID, 0, min(p.N(), p.G.NumNodes()))
	e.curTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	e.prevTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	if p.G.Depth() >= 1<<15 {
		panic("sim: graph depth exceeds the engine's int16 level mirror")
	}
	e.lvlOf = make([]int16, p.N())
	e.levelCount = make([]int32, p.G.Depth()+1)
	// Per-level node-ID bounds for the wide occupancy clears: every
	// occupied node sits at a level inside the active window, so zeroing
	// the count arena over [min lvlNodeLo, max lvlNodeHi] of the window's
	// levels covers every dirty count (plus already-zero ones, which a
	// memclr absorbs for free). Topology builders emit nodes level by
	// level, making the ranges tight in practice, but correctness only
	// needs them to cover.
	e.lvlNodeLo = make([]int32, p.G.Depth()+1)
	e.lvlNodeHi = make([]int32, p.G.Depth()+1)
	for l := 0; l <= p.G.Depth(); l++ {
		lo, hi := int32(p.G.NumNodes()), int32(-1)
		for _, v := range p.G.Level(l) {
			if int32(v) < lo {
				lo = int32(v)
			}
			if int32(v) > hi {
				hi = int32(v)
			}
		}
		e.lvlNodeLo[l], e.lvlNodeHi[l] = lo, hi
	}
	e.Packets = make([]Packet, p.N())
	e.pending = make([]PacketID, 0, p.N())
	e.injSchedule = make([]uint64, 0, p.N())
	e.mergeBuf = make([]PacketID, 0, p.N())
	for i, path := range p.Set.Paths {
		e.Packets[i].Preselected = path
	}
	// Pre-carve PathList backing from one arena, sized at the longest
	// preselected path plus prepend headroom, so the injection wave
	// allocates nothing (previously the first borrow of every packet
	// was a fresh allocation — ~N allocs charged to the startup
	// transient; see BENCH_engine.json history).
	maxLen := 0
	for _, path := range p.Set.Paths {
		if len(path) > maxLen {
			maxLen = len(path)
		}
	}
	unit := maxLen + 8
	arena := make([]graph.EdgeID, p.N()*unit)
	e.pathPool = make([][]graph.EdgeID, 0, p.N())
	for i := 0; i < p.N(); i++ {
		e.pathPool = append(e.pathPool, arena[i*unit:i*unit:(i+1)*unit])
	}
	e.preUnit = maxLen + 1
	e.preNodes = make([]graph.NodeID, p.N()*e.preUnit)
	e.preIdx = make([]int32, p.N())
	e.offPath = make([]int32, p.N())
	e.retraceDirs = make([]uint64, p.N())
	e.retraceDeep = make([]bool, p.N())
	for i, path := range p.Set.Paths {
		if len(path) == 0 {
			continue
		}
		v := p.G.PathSource(path)
		row := e.preNodes[i*e.preUnit:]
		row[0] = v
		for j, ed := range path {
			if p.G.DirectionFrom(ed, v) != graph.Forward {
				panic(fmt.Sprintf("sim: packet %d: preselected path edge %d is not forward", i, ed))
			}
			v = p.G.EndpointAt(ed, graph.Forward)
			row[j+1] = v
		}
	}
	e.pathBase = make([][]graph.EdgeID, p.N())
	e.pathHead = make([]int32, p.N())
	e.granted = make([]bool, p.N())
	e.wantBuf = make([]bool, p.N())
	e.setShards(1, 1)
	e.Reset(seed)
	return e
}

// Reset rewinds the engine to step 0 with a new seed, reusing every
// allocation: the flat occupancy backing, the path-arena pool, slot
// scratch and the shard/worker configuration all survive, so a
// Monte-Carlo worker can run thousands of trials on one engine without
// rebuilding it (see mc.Run). Observers are per-run attachments and are
// cleared; the router is re-initialized through Router.Init. Resetting
// an engine mid-run is allowed.
func (e *Engine) Reset(seed int64) {
	e.seed = seed
	e.Rng.Seed(seed)
	e.arbSeed = arbStream(seed)
	e.M = Metrics{}
	e.now = 0
	e.observers = e.observers[:0]
	// Probes and event sinks are per-run attachments like observers:
	// cleared here, re-attached by the caller after Reset.
	e.probe = nil
	e.events = nil
	e.lastM = Metrics{}
	// The epoch deliberately keeps counting across runs: slot and move
	// records from the previous run are stale by construction and never
	// need clearing. Forward memory and occupancy are rolled back through
	// their dirty lists, which also covers engines reset in the middle of
	// a run.
	for _, ed := range e.prevTouched {
		bitClear(e.prevFwdBits, int32(ed))
	}
	for _, ed := range e.curTouched {
		bitClear(e.curFwdBits, int32(ed))
	}
	e.prevTouched = e.prevTouched[:0]
	e.curTouched = e.curTouched[:0]
	e.clearOccupancy()
	e.occupied = e.occupied[:0]
	e.active = e.active[:0]
	e.pending = e.pending[:0]
	for l := e.winLo; l <= e.winHi && l < len(e.levelCount); l++ {
		e.levelCount[l] = 0
	}
	e.winLo, e.winHi = len(e.levelCount), -1
	for i := range e.Packets {
		p := &e.Packets[i]
		if e.pathBase[i] != nil {
			e.pathPool = append(e.pathPool, e.pathBase[i][:0])
			e.pathBase[i] = nil
		}
		*p = Packet{
			ID:          PacketID(i),
			Cur:         graph.NoNode,
			Src:         graph.NoNode,
			Dst:         graph.NoNode,
			Preselected: p.Preselected,
			InjectTime:  -1,
			AbsorbTime:  -1,
			ArrivalEdge: graph.NoEdge,
		}
		if len(p.Preselected) > 0 {
			p.Src = e.G.PathSource(p.Preselected)
			p.Dst = e.G.PathDest(p.Preselected)
			e.pending = append(e.pending, p.ID)
		} else {
			// Zero-length path: the packet is already where it is
			// going. Absorb it up front so no Request can ever index an
			// empty PathList.
			p.Absorbed = true
			p.InjectTime = 0
			p.AbsorbTime = 0
			e.M.Injected++
			e.M.Absorbed++
		}
	}
	e.router.Init(e)

	// With an InjectionPlanner router, park the pending packets in a
	// release queue sorted by (InjectStep, ID) and drain the pending list
	// entirely: Step's prologue re-admits each packet into the ID-ordered
	// pending list at its release step, so the per-step WantInject sweep
	// touches only packets whose lower bound has passed. The schedule is
	// built here — after Router.Init — because planners typically derive
	// it from state randomized at Init (the frame router's set
	// assignment).
	e.planner = nil
	e.injSchedule = e.injSchedule[:0]
	e.injCursor = 0
	if pl, ok := e.router.(InjectionPlanner); ok && !e.legacyInject {
		e.planner = pl
		for _, pid := range e.pending {
			e.injSchedule = append(e.injSchedule, injPack(pl.InjectStep(&e.Packets[pid]), pid))
		}
		slices.Sort(e.injSchedule)
		e.pending = e.pending[:0]
	}
}

// Seed returns the seed of the current run. Routers can derive
// order-independent randomness streams from it via StreamSeed.
func (e *Engine) Seed() int64 { return e.seed }

// Now returns the current step number (the step about to execute, or
// just executed inside observers).
func (e *Engine) Now() int { return e.now }

// At returns the active packets at node v (engine-owned; do not
// mutate).
func (e *Engine) At(v graph.NodeID) []PacketID {
	off := e.atOff[v]
	return e.atList[off : off+int32(e.atN[v])]
}

// InFlight returns the number of currently active packets.
func (e *Engine) InFlight() int { return len(e.active) }

// Active returns the in-flight packets in injection order
// (engine-owned; do not mutate). Routers and observers should iterate
// this instead of the full packet array when they only care about live
// packets.
func (e *Engine) Active() []PacketID { return e.active }

// LevelPopulation returns the number of active packets currently at
// level l, maintained incrementally (O(1) per packet event).
func (e *Engine) LevelPopulation(l int) int { return int(e.levelCount[l]) }

// Window returns the active level band: the smallest [lo, hi] such that
// every in-flight packet sits at a level in [lo, hi]. With no packets in
// flight it returns (0, -1). The band is maintained stale-wide during a
// step and trimmed lazily here; under the frame schedule it tracks the
// frontier, so observers can skip the provably empty levels of a deep
// network (see core.Schedule.ActiveBand for the schedule-side bound).
func (e *Engine) Window() (lo, hi int) {
	for e.winLo <= e.winHi && e.levelCount[e.winLo] == 0 {
		e.winLo++
	}
	for e.winHi >= e.winLo && e.levelCount[e.winHi] == 0 {
		e.winHi--
	}
	if e.winLo > e.winHi {
		return 0, -1
	}
	return e.winLo, e.winHi
}

// AddObserver registers a per-step hook.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// Done reports whether every packet has been absorbed.
func (e *Engine) Done() bool {
	return e.M.Absorbed == len(e.Packets)
}

// Run executes steps until all packets are absorbed or maxSteps is
// reached, and returns the number of steps executed and whether the run
// completed.
func (e *Engine) Run(maxSteps int) (int, bool) {
	for e.now < maxSteps && !e.Done() {
		e.Step()
	}
	return e.now, e.Done()
}

// clearOccupancy zeroes the occupancy counts and bits of every
// occupied node. Two strategies, picked per call: when the active
// window's node-ID range is not much wider than the occupied count,
// one memclr over the 2-byte count arena (and the covering occBits
// words) clears the whole band at cache-line width — 32 counts per
// line, no scattered read-modify-write — which is how a dense window
// beats the per-node walk; otherwise (sparse occupancy across a wide
// band) the scattered per-node clear touches exactly the dirty
// entries. Correctness of the wide path needs only the containment
// invariant: every occupied node sits at a level inside Window(), so
// the covering node range includes every nonzero count and every set
// occupancy bit — zeroing the already-zero remainder is free.
func (e *Engine) clearOccupancy() {
	n := len(e.occupied)
	if n == 0 {
		return
	}
	lo, hi := e.Window()
	if hi >= lo {
		n0, n1 := int32(len(e.atN)), int32(-1)
		for l := lo; l <= hi; l++ {
			if e.lvlNodeLo[l] < n0 {
				n0 = e.lvlNodeLo[l]
			}
			if e.lvlNodeHi[l] > n1 {
				n1 = e.lvlNodeHi[l]
			}
		}
		// Wide when the band costs at most ~16 cleared bytes per
		// occupied node (2-byte counts, 8:1 range:occupied ratio) —
		// below the cost of a scattered store pair per node.
		if n1 >= n0 && int(n1-n0)+1 <= 8*n {
			clear(e.atN[n0 : n1+1])
			clear(e.occBits[n0>>6 : n1>>6+1])
			return
		}
	}
	for _, v := range e.occupied {
		e.atN[v] = 0
		bitClear(e.occBits, int32(v))
	}
}

// clearOccBits zeroes only the occupancy bitset for every occupied
// node, leaving the counts alone. This is the sequential half of the
// fused parallel clear: shard workers zero their own nodes' counts at
// the tail of the resolve region (distinct uint16 locations, so no
// shared-word hazard), but the bitset packs 64 nodes per word and
// nodes from different shards routinely share a word — a concurrent
// bitClear would be a racing read-modify-write. So the dispatcher
// clears the bits here, after the barrier, while e.occupied is still
// intact. Same wide-vs-scatter split as clearOccupancy, with the wide
// threshold scaled to the word-packed bitset: one cleared word covers
// 64 nodes, so the band pass wins whenever the covering word range is
// at most one word per occupied node.
func (e *Engine) clearOccBits() {
	n := len(e.occupied)
	if n == 0 {
		return
	}
	lo, hi := e.Window()
	if hi >= lo {
		n0, n1 := int32(len(e.atN)), int32(-1)
		for l := lo; l <= hi; l++ {
			if e.lvlNodeLo[l] < n0 {
				n0 = e.lvlNodeLo[l]
			}
			if e.lvlNodeHi[l] > n1 {
				n1 = e.lvlNodeHi[l]
			}
		}
		if n1 >= n0 && int(n1>>6)-int(n0>>6)+1 <= n {
			clear(e.occBits[n0>>6 : n1>>6+1])
			return
		}
	}
	for _, v := range e.occupied {
		bitClear(e.occBits, int32(v))
	}
}

// addAt places an active packet at node v, keeping the occupied-node
// list consistent.
func (e *Engine) addAt(v graph.NodeID, pid PacketID) {
	n := e.atN[v]
	if n == 0 {
		e.occupied = append(e.occupied, v)
		bitSet(e.occBits, int32(v))
	}
	e.atList[e.atOff[v]+int32(n)] = pid
	e.atN[v] = n + 1
}

// borrowPath installs a copy of pre as packet pid's path list, borrowing
// a segment pooled from the arena / an absorbed packet. The copy lands
// at the segment's tail so all slack sits in front of the window, where
// prepends (deflections) consume it and pops (forward moves) add to it.
func (e *Engine) borrowPath(pid PacketID, pre graph.Path) {
	buf := e.pathBase[pid]
	if buf == nil {
		if n := len(e.pathPool); n > 0 {
			buf = e.pathPool[n-1]
			e.pathPool = e.pathPool[:n-1]
		} else {
			buf = make([]graph.EdgeID, 0, len(pre)+8)
		}
	}
	full := buf[:cap(buf)]
	h := len(full) - len(pre)
	copy(full[h:], pre)
	e.pathBase[pid] = buf
	e.pathHead[pid] = int32(h)
	e.Packets[pid].PathList = full[h:]
}

// repackPath restores front slack for a packet whose prepends have
// consumed the window's headroom: the path is shifted to the segment's
// tail (growing the segment first if the window already fills it) and
// the new head offset is returned. Prepends outnumbering pops by more
// than the injection headroom requires a sustained deflection storm, so
// this is effectively cold.
func (e *Engine) repackPath(p *Packet) int32 {
	base := e.pathBase[p.ID]
	n := len(p.PathList)
	if n >= cap(base) {
		base = make([]graph.EdgeID, 0, 2*cap(base)+8)
	}
	full := base[:cap(base)]
	h := len(full) - n
	copy(full[h:], p.PathList)
	e.pathBase[p.ID] = base
	e.pathHead[p.ID] = int32(h)
	p.PathList = full[h:]
	return int32(h)
}

// Step executes one synchronous time step.
func (e *Engine) Step() {
	t := e.now
	e.stepT = t

	// Phase 1 prologue: release packets whose InjectStep bound has
	// passed from the schedule into the pending list. Entries are
	// consumed in (release, ID) order as one batched run; the rel bits
	// are masked off in place (the schedule is rebuilt every Reset) and
	// the run is admitted so that pending stays in ascending ID order
	// exactly as if every packet had been there from step 0. The batch
	// is processed without a sort in the common cases: a run released at
	// a single step is already ID-sorted (the schedule orders equal
	// release steps by ID), and with no stragglers in pending the run
	// appends into the pending buffer directly; only a multi-step
	// catch-up run interleaved with waiting packets pays the sort+merge.
	if e.planner != nil && e.injCursor < len(e.injSchedule) {
		lo := e.injCursor
		for e.injCursor < len(e.injSchedule) && int(e.injSchedule[e.injCursor]>>32) <= t {
			e.injCursor++
		}
		if rel := e.injSchedule[lo:e.injCursor]; len(rel) > 0 {
			sorted := true
			for i := range rel {
				rel[i] &= 0xffffffff
				if i > 0 && rel[i-1] > rel[i] {
					sorted = false
				}
			}
			if !sorted {
				slices.Sort(rel)
			}
			if len(e.pending) == 0 {
				for _, r := range rel {
					e.pending = append(e.pending, PacketID(uint32(r)))
				}
			} else {
				out := e.mergeBuf[:0]
				i, j := 0, 0
				for i < len(e.pending) && j < len(rel) {
					if e.pending[i] < PacketID(uint32(rel[j])) {
						out = append(out, e.pending[i])
						i++
					} else {
						out = append(out, PacketID(uint32(rel[j])))
						j++
					}
				}
				out = append(out, e.pending[i:]...)
				for ; j < len(rel); j++ {
					out = append(out, PacketID(uint32(rel[j])))
				}
				e.mergeBuf = e.pending[:0]
				e.pending = out
			}
		}
	}

	// Phase 1: injection in isolation. A packet enters only when its
	// router wants it in and its source node holds no active packet.
	// Only never-injected packets are scanned; injected ones leave the
	// pending list for good. With a worker pool and a certified router
	// the WantInject sweep — the dominant per-step cost early in a
	// large staggered run — is fanned out over index chunks; the commit
	// below then walks the pending list in order, so the admitted set
	// and all occupancy interactions are identical in both modes.
	if len(e.pending) > 0 {
		parFilter := e.pool != nil && e.concurrent && len(e.pending) >= parallelInjectMin
		if parFilter {
			e.pool.runRegion(modeInjectFilter, e.nshards)
		}
		keep := e.pending[:0]
		for i, pid := range e.pending {
			p := &e.Packets[pid]
			want := false
			if parFilter {
				want = e.wantBuf[i]
			} else {
				want = e.router.WantInject(t, p)
			}
			if !want {
				keep = append(keep, pid)
				continue
			}
			if bitGet(e.occBits, int32(p.Src)) {
				e.M.InjectionWaits++
				keep = append(keep, pid)
				continue
			}
			p.Active = true
			p.Cur = p.Src
			p.InjectTime = t
			e.borrowPath(pid, p.Preselected)
			p.ArrivalEdge = graph.NoEdge
			p.HeadDir = graph.Forward
			e.preIdx[pid] = 0
			e.offPath[pid] = 0
			e.retraceDirs[pid] = 0
			e.retraceDeep[pid] = false
			e.addAt(p.Src, pid)
			e.active = append(e.active, pid)
			lvl := int16(e.G.LevelOf(p.Src))
			e.lvlOf[pid] = lvl
			e.levelCount[lvl]++
			if int(lvl) < e.winLo {
				e.winLo = int(lvl)
			}
			if int(lvl) > e.winHi {
				e.winHi = int(lvl)
			}
			e.M.Injected++
			if e.events != nil {
				e.events.RecordEvent(t, pid, EventInject, int32(p.Src))
			}
		}
		e.pending = keep
	}
	if len(e.active) > e.M.MaxInFlight {
		e.M.MaxInFlight = len(e.active)
	}

	// Phases 2+3: collect requests, resolve per-slot winners, and
	// assign deflection slots to losers. All three are node-local —
	// every contender for a slot stands at the single node the slot
	// leaves — so with a worker pool they run over per-step blocks of
	// the occupied list (partitionOccupied); the arbitration keys
	// (rng.go) make the winner independent of enumeration order. Router
	// callbacks for deflections are recorded per shard and replayed
	// sequentially below, so the router-visible callback order is
	// identical for every worker and shard count. Each shard also
	// clears its own nodes' occupancy counts at the tail of its block
	// (barrier fusion; the word-shared bitset is cleared sequentially
	// at the commit prologue), so the step never dispatches a third
	// region between the barrier and the commit. Below
	// minParallelOccupied live nodes the dispatch overhead exceeds the
	// work and the phases run in place — same code, same trace.
	e.epoch++
	for i := range e.shards {
		e.shards[i].reset()
	}
	cleared := false
	useParallel := e.pool != nil && len(e.occupied) >= minParallelOccupied
	switch {
	case useParallel && e.concurrent:
		// Fully parallel: requests, arbitration, deflection and the
		// occupancy clear all fused into one region.
		e.pool.runRegion(modeShardStep, e.partitionOccupied())
		cleared = true
	case useParallel:
		// Router not certified for concurrent Request: sweep requests
		// sequentially in active order (preserving any sequential
		// generator the router draws from), then shard the resolve
		// phase — arbitration plus deflection plus the fused clear —
		// which performs no router calls.
		sh := &e.shards[0]
		for _, pid := range e.active {
			e.collectRequest(t, pid, sh)
		}
		e.pool.runRegion(modeShardResolve, e.partitionOccupied())
		cleared = true
	default:
		// Sequential: one shard, active-order sweep, in-place node
		// order — exactly the parallel result by construction.
		sh := &e.shards[0]
		for _, pid := range e.active {
			e.collectRequest(t, pid, sh)
		}
		for _, v := range e.occupied {
			e.resolveNode(t, v, sh)
		}
	}

	// Merge: fold per-shard counters and replay deflection callbacks.
	// Shards are contiguous blocks of the occupied list in order, and
	// each shard visits its block in order, so concatenating the
	// per-shard records in shard order reconstructs the exact
	// sequential callback order — no per-node shard lookup, no cursor
	// walk.
	stepExcited := 0
	for i := range e.shards {
		sh := &e.shards[i]
		e.M.FaultBlocked += sh.faultBlocked
		stepExcited += sh.excited
		for _, rec := range sh.deflects {
			e.applyDeflectRecord(t, rec)
		}
	}

	// Phases 4+5, fused: clear the old occupancy (just the bitset when
	// the shard regions already zeroed the counts — barrier fusion),
	// then one sweep over the
	// active list commits all moves simultaneously and rebuilds
	// occupancy from the survivors, touching only live nodes (no router
	// callback observes occupancy, so clearing before the commits is
	// unobservable). Forward-memory bits from the previous use of the
	// curFwdBits set are cleared via its dirty list instead of a full
	// bitset sweep.
	for _, ed := range e.curTouched {
		bitClear(e.curFwdBits, int32(ed))
	}
	e.curTouched = e.curTouched[:0]
	if cleared {
		// Shard regions zeroed their own nodes' counts (barrier
		// fusion); only the word-shared bitset is left for the
		// sequential prologue.
		e.clearOccBits()
	} else {
		e.clearOccupancy()
	}
	e.occupied = e.occupied[:0]
	keep := e.active[:0]
	for _, pid := range e.active {
		mv := e.moves[pid]
		if mv.epoch != e.epoch {
			panic(fmt.Sprintf("sim: step %d: active packet %d has no move (hot-potato requires all packets to leave)", t, pid))
		}
		p := &e.Packets[pid]
		if mv.slot != stallSlot {
			e.applyMove(t, p, mv.slot)
			if !p.Active {
				continue // absorbed this step
			}
		}
		keep = append(keep, pid)
		e.addAt(p.Cur, pid)
	}
	e.active = keep
	e.prevFwdBits, e.curFwdBits = e.curFwdBits, e.prevFwdBits
	e.prevTouched, e.curTouched = e.curTouched, e.prevTouched

	e.now++
	e.M.Steps = e.now
	if e.probe != nil {
		e.emitSnapshot(t, stepExcited)
	}
	for _, o := range e.observers {
		o(t, e)
	}
	e.router.EndStep(t, e)
}

// collectRequest gathers one packet's request into the flat per-packet
// request arrays (reqSlot/reqPrio); no shared slot state is touched, so
// the sweep streams through memory. Winner resolution happens afterwards
// in resolveNode, node by node.
func (e *Engine) collectRequest(t int, pid PacketID, sh *shardState) {
	p := &e.Packets[pid]
	req := e.router.Request(t, p)
	// Fast-path validation: the head traversal in the engine-maintained
	// head direction is valid by construction and costs no load at all;
	// any other request is well-formed iff the edge exists and
	// traversing it in req.Dir originates at the packet's node — the
	// origin endpoint is one bounds-checked load from the graph's flat
	// edge-ends array. The descriptive diagnostics live in checkRequest,
	// consulted only once the cheap checks have already failed.
	if len(p.PathList) == 0 || req.Edge != p.PathList[0] || req.Dir != p.HeadDir {
		if uint32(req.Edge) >= uint32(e.G.NumEdges()) || e.G.EndpointAt(req.Edge, req.Dir.Reverse()) != p.Cur {
			panic(fmt.Sprintf("sim: step %d: %v", t, e.checkRequest(p, req)))
		}
	}
	e.granted[pid] = false
	if e.probe != nil && req.Priority >= ExcitedPriority {
		sh.excited++
	}
	if e.Faults != nil && e.Faults(req.Edge, t) {
		sh.faultBlocked++
		e.reqSlot[pid] = blockedSlot
		return
	}
	e.reqSlot[pid] = slotIndex(req.Edge, req.Dir)
	e.reqPrio[pid] = req.Priority
}

// resolveNode arbitrates the requested slots among the packets at node
// v and assigns deflection slots to the losers. Every contender for a
// slot stands at the single node the slot leaves, so the whole
// resolution is node-local: the scratch is the node's occupancy list
// (degree-bounded) plus a used-slot list of the same size, and the
// winner of an equal-priority conflict is the contender with the
// largest counter-based arbitration key — a commutative rule, so any
// enumeration order yields the same winner (each of k contenders wins
// with probability 1/k; see rng.go). Keys are only computed when a slot
// actually has two equal-priority contenders.
func (e *Engine) resolveNode(t int, v graph.NodeID, sh *shardState) {
	occ := e.At(v)
	if len(occ) == 1 {
		// Overwhelmingly the common case under sparse load: one packet,
		// no contention, its request granted unless fault-blocked.
		pid := occ[0]
		if s := e.reqSlot[pid]; s != blockedSlot {
			e.granted[pid] = true
			e.moves[pid] = moveRec{epoch: e.epoch, slot: s}
			return
		}
		sh.usedBuf = sh.usedBuf[:0]
		e.deflectLosers(t, v, occ, sh)
		return
	}
	used := sh.usedBuf[:0]
	for i, pid := range occ {
		s := e.reqSlot[pid]
		if s == blockedSlot {
			continue
		}
		// An earlier occupant requesting the same slot already resolved
		// it (including this pid as a contender).
		dup := false
		for _, q := range occ[:i] {
			if e.reqSlot[q] == s {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		w, wp := pid, e.reqPrio[pid]
		var wk uint64
		keyed := false
		for _, q := range occ[i+1:] {
			if e.reqSlot[q] != s {
				continue
			}
			switch qp := e.reqPrio[q]; {
			case qp > wp:
				w, wp, keyed = q, qp, false
			case qp == wp:
				if !keyed {
					wk = arbKey(e.arbSeed, t, s, w)
					keyed = true
				}
				if qk := arbKey(e.arbSeed, t, s, q); qk > wk || (qk == wk && q > w) {
					w, wk = q, qk
				}
			}
		}
		e.granted[w] = true
		e.moves[w] = moveRec{epoch: e.epoch, slot: s}
		used = append(used, s)
	}
	sh.usedBuf = used
	e.deflectLosers(t, v, occ, sh)
}

// applyDeflectRecord commits one deferred deflection (or fault stall):
// counters and the router callback, in deterministic merge order.
func (e *Engine) applyDeflectRecord(t int, rec deflectRec) {
	if rec.slot == stallSlot {
		e.M.FaultStalls++
		if e.events != nil {
			e.events.RecordEvent(t, rec.pid, EventStall, 0)
		}
		return
	}
	e.M.Deflections[rec.kind]++
	if e.events != nil {
		e.events.RecordEvent(t, rec.pid, EventDeflect, int32(rec.kind))
	}
	e.router.OnDeflect(t, &e.Packets[rec.pid], slotEdge(rec.slot), rec.kind)
}

// checkRequest diagnoses an invalid request (cold path: collectRequest
// has already rejected it with the cheap origin check; this re-derives
// which condition failed for the panic message).
func (e *Engine) checkRequest(p *Packet, req Request) error {
	if req.Edge < 0 || int(req.Edge) >= e.G.NumEdges() {
		return fmt.Errorf("packet %d requested unknown edge %d", p.ID, req.Edge)
	}
	ed := e.G.Edge(req.Edge)
	if ed.From != p.Cur && ed.To != p.Cur {
		return fmt.Errorf("packet %d at node %d requested non-incident edge %d", p.ID, p.Cur, req.Edge)
	}
	if e.G.DirectionFrom(req.Edge, p.Cur) != req.Dir {
		return fmt.Errorf("packet %d at node %d requested edge %d in direction %s which does not leave the node",
			p.ID, p.Cur, req.Edge, req.Dir)
	}
	return nil
}

// deflectLosers assigns outgoing slots to the packets at node v whose
// requests were not granted, preferring (1) the reverse of each
// packet's own arrival, (2) safe backward slots recycled from the
// previous step's forward traversals, (3) any backward slot, (4) any
// forward slot. Under the paper's preconditions only (1) and (2) occur.
// Claimed slots live in sh.usedBuf (seeded by resolveNode with the
// granted slots) — all slot state is node-local, so shards may run this
// concurrently for their own nodes; router callbacks are deferred into
// sh.deflects and replayed at the merge.
func (e *Engine) deflectLosers(t int, v graph.NodeID, occ []PacketID, sh *shardState) {
	sh.loserBuf = sh.loserBuf[:0]
	for _, pid := range occ {
		if !e.granted[pid] {
			sh.loserBuf = append(sh.loserBuf, pid)
		}
	}
	if len(sh.loserBuf) == 0 {
		return
	}
	losers := sh.loserBuf
	node := e.G.Node(v)

	free := func(s int32) bool {
		for _, u := range sh.usedBuf {
			if u == s {
				return false
			}
		}
		return e.Faults == nil || !e.Faults(slotEdge(s), t)
	}
	assign := func(pid PacketID, s int32, kind DeflectKind) {
		sh.usedBuf = append(sh.usedBuf, s)
		e.moves[pid] = moveRec{epoch: e.epoch, slot: s}
		e.Packets[pid].Deflections++
		sh.deflects = append(sh.deflects, deflectRec{pid: pid, slot: s, kind: kind})
	}

	// Pass 1: own arrival reverse.
	remaining := losers[:0]
	for _, pid := range losers {
		p := &e.Packets[pid]
		if p.ArrivalEdge != graph.NoEdge {
			d := p.ArrivalDir.Reverse()
			s := slotIndex(p.ArrivalEdge, d)
			if e.G.EndpointAt(p.ArrivalEdge, d.Reverse()) == v && free(s) {
				assign(pid, s, DeflectArrivalReverse)
				continue
			}
		}
		remaining = append(remaining, pid)
	}
	losers = remaining

	// Pass 2: safe backward (edges forward-traversed last step).
	remaining = losers[:0]
	for _, pid := range losers {
		var chosen int32
		found := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) && bitGet(e.prevFwdBits, int32(ed)) {
				chosen, found = s, true
				break
			}
		}
		if found {
			assign(pid, chosen, DeflectSafeBackward)
		} else {
			remaining = append(remaining, pid)
		}
	}
	losers = remaining

	// Pass 3: any backward; Pass 4: any forward.
	for _, pid := range losers {
		assigned := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) {
				assign(pid, s, DeflectUnsafeBackward)
				assigned = true
				break
			}
		}
		if assigned {
			continue
		}
		for _, ed := range node.Up {
			s := slotIndex(ed, graph.Forward)
			if free(s) {
				assign(pid, s, DeflectForward)
				assigned = true
				break
			}
		}
		if !assigned {
			if e.Faults != nil {
				// An outage consumed the node's slack: the packet holds
				// for one step (stallSlot), the bufferless model's local
				// escape hatch under faults.
				e.moves[pid] = moveRec{epoch: e.epoch, slot: stallSlot}
				sh.deflects = append(sh.deflects, deflectRec{pid: pid, slot: stallSlot})
				continue
			}
			panic(fmt.Sprintf("sim: step %d: node %d: no free slot for deflected packet %d (capacity violated)", t, v, pid))
		}
	}
}

// applyMove commits one traversal and updates path bookkeeping: a
// traversal of the path head pops it, anything else prepends (the
// paper's deflection rule, which also covers wait-state oscillation).
// Both are O(1) window moves over the packet's borrowed segment (see
// pathBase); the segment origin is tracked separately, so the full
// capacity still returns to the pool on absorption.
func (e *Engine) applyMove(t int, p *Packet, s int32) {
	ed, dir := slotEdge(s), slotDir(s)
	pid := p.ID
	var dest graph.NodeID
	if len(p.PathList) > 0 && p.PathList[0] == ed {
		// Pop: the head traversal (dir necessarily equals HeadDir — a
		// slot leaving Cur along ed has a unique direction).
		if e.offPath[pid] == 0 {
			// On the preselected path: the destination comes from the
			// precomputed node sequence, read sequentially per packet,
			// and the next head is again a forward preselected edge.
			idx := e.preIdx[pid] + 1
			e.preIdx[pid] = idx
			dest = e.preNodes[int(pid)*e.preUnit+int(idx)]
			p.HeadDir = graph.Forward
		} else {
			// Retracing a prepended entry.
			dest = e.G.EndpointAt(ed, dir)
			e.offPath[pid]--
			e.retraceDirs[pid] >>= 1
			switch {
			case e.offPath[pid] == 0:
				e.retraceDeep[pid] = false
				p.HeadDir = graph.Forward
			case e.retraceDeep[pid]:
				p.HeadDir = e.G.DirectionFrom(p.PathList[1], dest)
			default:
				p.HeadDir = graph.Direction(e.retraceDirs[pid] & 1)
			}
		}
		p.PathList = p.PathList[1:]
		e.pathHead[pid]++
	} else {
		// Prepend: a deflection or wait oscillation off the head. The
		// new head retraces this traversal, so its direction from the
		// destination is known without a lookup.
		dest = e.G.EndpointAt(ed, dir)
		h := e.pathHead[pid]
		if h == 0 {
			h = e.repackPath(p)
		}
		h--
		base := e.pathBase[pid]
		full := base[:cap(base)]
		full[h] = ed
		e.pathHead[pid] = h
		p.PathList = full[h : int(h)+1+len(p.PathList)]
		if e.offPath[pid] >= 64 {
			e.retraceDeep[pid] = true
		}
		e.offPath[pid]++
		e.retraceDirs[pid] = e.retraceDirs[pid]<<1 | uint64(dir.Reverse())
		p.HeadDir = dir.Reverse()
	}
	p.Cur = dest
	p.ArrivalEdge = ed
	p.ArrivalDir = dir
	lvl := e.lvlOf[p.ID]
	e.levelCount[lvl]--
	if dir == graph.Forward {
		p.ForwardMoves++
		bitSet(e.curFwdBits, int32(ed))
		e.curTouched = append(e.curTouched, ed)
		lvl++
	} else {
		p.BackwardMoves++
		lvl--
	}
	e.lvlOf[p.ID] = lvl
	e.levelCount[lvl]++
	if int(lvl) < e.winLo {
		e.winLo = int(lvl)
	}
	if int(lvl) > e.winHi {
		e.winHi = int(lvl)
	}
	e.M.Moves++
	if e.granted[p.ID] {
		e.router.OnMove(t, p)
	}
	if p.Cur == p.Dst {
		p.Active = false
		p.Absorbed = true
		p.AbsorbTime = t + 1
		e.levelCount[lvl]--
		e.M.Absorbed++
		if base := e.pathBase[p.ID]; base != nil {
			e.pathPool = append(e.pathPool, base[:0])
			e.pathBase[p.ID] = nil
			p.PathList = nil
		}
		e.router.OnAbsorb(t, p)
		if e.events != nil {
			e.events.RecordEvent(t, p.ID, EventAbsorb, int32(p.Dst))
		}
	}
}
