package sim

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Router is a hot-potato routing algorithm driven by the Engine. The
// engine owns packet motion, conflict resolution and deflection; the
// router owns injection timing, per-packet requests (edge + priority)
// and its own state machine, advanced through the On* notifications.
type Router interface {
	// Name identifies the algorithm in reports.
	Name() string

	// Init is called once before the first step.
	Init(e *Engine)

	// WantInject reports whether the (not yet injected) packet should
	// be injected at step t. The engine additionally requires the
	// source node to be free of active packets (injection in
	// isolation); if it is not, the packet stays out regardless.
	WantInject(t int, p *Packet) bool

	// Request returns the desired traversal for active packet p at
	// step t. The returned edge must leave p.Cur.
	Request(t int, p *Packet) Request

	// OnDeflect tells the router that p lost its request and was
	// deflected along edge e (kind classifies the slot).
	OnDeflect(t int, p *Packet, e graph.EdgeID, kind DeflectKind)

	// OnMove tells the router that p's own request was granted.
	OnMove(t int, p *Packet)

	// OnAbsorb tells the router that p reached its destination.
	OnAbsorb(t int, p *Packet)

	// EndStep is called after every step commits.
	EndStep(t int, e *Engine)
}

// Observer is a read-only per-step hook (tracing, invariant checking).
// It runs after the step commits, before Router.EndStep.
type Observer func(t int, e *Engine)

// Metrics aggregates engine-level counters for one run.
type Metrics struct {
	Steps       int
	Injected    int
	Absorbed    int
	Moves       int
	Deflections [4]int // indexed by DeflectKind
	// MaxInFlight is the peak number of simultaneously active packets.
	MaxInFlight int
	// InjectionWaits counts (packet, step) pairs in which a packet
	// wanted in but its source node was occupied.
	InjectionWaits int
	// FaultBlocked counts (packet, step) pairs whose requested edge was
	// down under the engine's fault model.
	FaultBlocked int
	// FaultStalls counts (packet, step) pairs in which an outage left a
	// node with fewer healthy out-slots than occupants, forcing a
	// packet to hold in place for one step (only possible under a fault
	// model; pure hot-potato never stalls).
	FaultStalls int
}

// TotalDeflections sums all deflection kinds.
func (m *Metrics) TotalDeflections() int {
	return m.Deflections[0] + m.Deflections[1] + m.Deflections[2] + m.Deflections[3]
}

// UnsafeDeflections counts deflections that are not safe in the paper's
// sense; the frame router's Lemma 2.1 predicts zero.
func (m *Metrics) UnsafeDeflections() int {
	return m.Deflections[DeflectUnsafeBackward] + m.Deflections[DeflectForward]
}

// Engine is the synchronous bufferless (hot-potato) engine.
//
// The step loop is organized around *live* state only: an active-packet
// list, a pending-injection list and an occupied-node list replace full
// rescans of the packet and node arrays, so a step costs O(active
// packets + occupied nodes + pending injections) rather than O(N +
// nodes + edges). In the large-N / sparse-activity regime (thousands of
// packets, a few percent in flight) this is the difference between the
// engine spending its time routing and spending it skipping absorbed
// packets. The hot path is also allocation-free in steady state: slot
// scratch, loser buffers, occupancy lists and forward-memory dirty
// lists are all reused, and PathList backing arrays of absorbed packets
// are pooled for later injections.
type Engine struct {
	G       *graph.Leveled
	Packets []Packet
	Rng     *rand.Rand
	M       Metrics

	// Faults, when non-nil, marks edges as down per step: requests for
	// a downed edge lose (the packet is deflected among healthy slots)
	// and deflections never use downed edges. Set before the first
	// Step.
	Faults FaultModel

	router    Router
	observers []Observer
	now       int

	// arb is the fast generator for conflict tie-breaking; all other
	// randomness (router-level coins) comes from Rng. See rng.go.
	arb splitMix64

	// active lists the in-flight packets; pending lists the packets not
	// yet injected. Both preserve relative packet order (pending starts
	// in ID order; active in injection order) so runs are deterministic
	// per seed.
	active  []PacketID
	pending []PacketID

	// at[v] lists the active packets currently at node v; occupied
	// lists the nodes v with len(at[v]) > 0, each exactly once.
	at       [][]PacketID
	occupied []graph.NodeID

	// prevForward[e] is the packet that traversed edge e forward during
	// the previous step (NoPacket if none); such an edge is a safe
	// backward deflection slot this step. prevTouched/curTouched list
	// the dirty entries of each array so resets touch only those edges.
	prevForward []PacketID
	curForward  []PacketID
	prevTouched []graph.EdgeID
	curTouched  []graph.EdgeID

	// Scratch reused across steps. Slots are indexed 2*edge+direction;
	// epoch stamps avoid clearing the arrays every step.
	epoch      uint32
	slotEpoch  []uint32   // slot -> last epoch the slot was claimed or contested
	slotWinner []PacketID // slot -> current winner (valid when slotEpoch matches)
	slotPrio   []int64    // slot -> winner's priority
	slotCount  []int32    // slot -> contenders seen at the winning priority
	moveEpoch  []uint32   // packet -> epoch of its committed move
	moveSlot   []int32    // packet -> committed slot
	contested  []int32    // slots touched this step, for winner marking
	loserBuf   []PacketID
	requests   []Request // indexed by PacketID
	granted    []bool

	// pathPool holds PathList backing arrays surrendered by absorbed
	// packets, reused by later injections so steady-state injection
	// allocates nothing.
	pathPool [][]graph.EdgeID
}

// stallSlot marks a packet that holds in place for one step because a
// fault left its node without a healthy out-slot.
const stallSlot int32 = -1

// slotIndex packs an (edge, direction) capacity unit into an array
// index.
func slotIndex(e graph.EdgeID, d graph.Direction) int32 {
	return int32(e)<<1 | int32(d)
}

// slotEdge and slotDir unpack a slot index.
func slotEdge(s int32) graph.EdgeID   { return graph.EdgeID(s >> 1) }
func slotDir(s int32) graph.Direction { return graph.Direction(s & 1) }

// NewEngine builds an engine for the problem with the given router and
// seed. Packet i corresponds to path i of the problem. A packet with an
// empty preselected path (source == destination) is absorbed
// immediately at step 0 without ever becoming active: it occupies no
// node and the router never sees a Request for it.
func NewEngine(p *workload.Problem, r Router, seed int64) *Engine {
	e := &Engine{
		G:           p.G,
		Rng:         rand.New(rand.NewSource(seed)),
		arb:         newSplitMix64(seed),
		router:      r,
		prevForward: make([]PacketID, p.G.NumEdges()),
		curForward:  make([]PacketID, p.G.NumEdges()),
	}
	// Node occupancy is bounded by degree (at most one arrival per
	// incident edge per step; injection requires an empty node), so
	// every per-node occupancy list is carved out of one flat backing
	// array of total size 2|E|. Lists then never grow beyond their
	// segment and the hot path never allocates for a newly visited
	// node.
	e.at = make([][]PacketID, p.G.NumNodes())
	occBacking := make([]PacketID, 2*p.G.NumEdges())
	for v, off := 0, 0; v < p.G.NumNodes(); v++ {
		d := p.G.Node(graph.NodeID(v)).Degree()
		e.at[v] = occBacking[off : off : off+d]
		off += d
	}
	e.slotEpoch = make([]uint32, 2*p.G.NumEdges())
	e.slotWinner = make([]PacketID, 2*p.G.NumEdges())
	e.slotPrio = make([]int64, 2*p.G.NumEdges())
	e.slotCount = make([]int32, 2*p.G.NumEdges())
	e.moveEpoch = make([]uint32, p.N())
	e.moveSlot = make([]int32, p.N())
	// Scratch lists are preallocated at their tight bounds so steady
	// state performs no growth reallocations at all.
	e.active = make([]PacketID, 0, p.N())
	e.occupied = make([]graph.NodeID, 0, min(p.N(), p.G.NumNodes()))
	e.contested = make([]int32, 0, min(p.N(), 2*p.G.NumEdges()))
	e.curTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	e.prevTouched = make([]graph.EdgeID, 0, min(p.N(), p.G.NumEdges()))
	e.loserBuf = make([]PacketID, 0, p.G.MaxDegree())
	e.pathPool = make([][]graph.EdgeID, 0, p.N())
	for i := range e.prevForward {
		e.prevForward[i] = NoPacket
		e.curForward[i] = NoPacket
	}
	e.Packets = make([]Packet, p.N())
	e.pending = make([]PacketID, 0, p.N())
	for i, path := range p.Set.Paths {
		pk := Packet{
			ID:          PacketID(i),
			Cur:         graph.NoNode,
			Src:         graph.NoNode,
			Dst:         graph.NoNode,
			Preselected: path,
			InjectTime:  -1,
			AbsorbTime:  -1,
			ArrivalEdge: graph.NoEdge,
		}
		if len(path) > 0 {
			pk.Src = p.G.PathSource(path)
			pk.Dst = p.G.PathDest(path)
			e.pending = append(e.pending, pk.ID)
		} else {
			// Zero-length path: the packet is already where it is
			// going. Absorb it up front so no Request can ever index an
			// empty PathList.
			pk.Absorbed = true
			pk.InjectTime = 0
			pk.AbsorbTime = 0
			e.M.Injected++
			e.M.Absorbed++
		}
		e.Packets[i] = pk
	}
	e.requests = make([]Request, p.N())
	e.granted = make([]bool, p.N())
	r.Init(e)
	return e
}

// Now returns the current step number (the step about to execute, or
// just executed inside observers).
func (e *Engine) Now() int { return e.now }

// At returns the active packets at node v (engine-owned; do not
// mutate).
func (e *Engine) At(v graph.NodeID) []PacketID { return e.at[v] }

// InFlight returns the number of currently active packets.
func (e *Engine) InFlight() int { return len(e.active) }

// Active returns the in-flight packets in injection order
// (engine-owned; do not mutate). Routers and observers should iterate
// this instead of the full packet array when they only care about live
// packets.
func (e *Engine) Active() []PacketID { return e.active }

// AddObserver registers a per-step hook.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// Done reports whether every packet has been absorbed.
func (e *Engine) Done() bool {
	return e.M.Absorbed == len(e.Packets)
}

// Run executes steps until all packets are absorbed or maxSteps is
// reached, and returns the number of steps executed and whether the run
// completed.
func (e *Engine) Run(maxSteps int) (int, bool) {
	for e.now < maxSteps && !e.Done() {
		e.Step()
	}
	return e.now, e.Done()
}

// addAt places an active packet at node v, keeping the occupied-node
// list consistent.
func (e *Engine) addAt(v graph.NodeID, pid PacketID) {
	if len(e.at[v]) == 0 {
		e.occupied = append(e.occupied, v)
	}
	e.at[v] = append(e.at[v], pid)
}

// borrowPath returns a buffer holding a copy of pre, reusing the
// packet's previous buffer or one pooled from an absorbed packet.
func (e *Engine) borrowPath(buf []graph.EdgeID, pre graph.Path) []graph.EdgeID {
	if buf == nil && len(e.pathPool) > 0 {
		buf = e.pathPool[len(e.pathPool)-1]
		e.pathPool = e.pathPool[:len(e.pathPool)-1]
	}
	return append(buf[:0], pre...)
}

// Step executes one synchronous time step.
func (e *Engine) Step() {
	t := e.now

	// Phase 1: injection in isolation. A packet enters only when its
	// router wants it in and its source node holds no active packet.
	// Only never-injected packets are scanned; injected ones leave the
	// pending list for good.
	if len(e.pending) > 0 {
		keep := e.pending[:0]
		for _, pid := range e.pending {
			p := &e.Packets[pid]
			if !e.router.WantInject(t, p) {
				keep = append(keep, pid)
				continue
			}
			if len(e.at[p.Src]) > 0 {
				e.M.InjectionWaits++
				keep = append(keep, pid)
				continue
			}
			p.Active = true
			p.Cur = p.Src
			p.InjectTime = t
			p.PathList = e.borrowPath(p.PathList, p.Preselected)
			p.ArrivalEdge = graph.NoEdge
			e.addAt(p.Src, pid)
			e.active = append(e.active, pid)
			e.M.Injected++
		}
		e.pending = keep
	}
	if len(e.active) > e.M.MaxInFlight {
		e.M.MaxInFlight = len(e.active)
	}

	// Phase 2: collect requests and resolve per-slot winners. Ties at
	// equal priority are broken by reservoir selection — the i-th
	// contender replaces the current winner with probability 1/i — so
	// each of k contenders wins with probability exactly 1/k
	// (a pairwise coin flip would give the last requester 1/2).
	e.epoch++
	e.contested = e.contested[:0]
	for _, pid := range e.active {
		p := &e.Packets[pid]
		req := e.router.Request(t, p)
		if err := e.checkRequest(p, req); err != nil {
			panic(fmt.Sprintf("sim: step %d: %v", t, err))
		}
		e.requests[pid] = req
		e.granted[pid] = false
		if e.Faults != nil && e.Faults(req.Edge, t) {
			e.M.FaultBlocked++
			continue
		}
		s := slotIndex(req.Edge, req.Dir)
		if e.slotEpoch[s] != e.epoch {
			e.slotEpoch[s] = e.epoch
			e.slotWinner[s] = pid
			e.slotPrio[s] = req.Priority
			e.slotCount[s] = 1
			e.contested = append(e.contested, s)
			continue
		}
		switch {
		case req.Priority > e.slotPrio[s]:
			e.slotWinner[s] = pid
			e.slotPrio[s] = req.Priority
			e.slotCount[s] = 1
		case req.Priority == e.slotPrio[s]:
			e.slotCount[s]++
			if e.arb.intn(e.slotCount[s]) == 0 {
				e.slotWinner[s] = pid
			}
		}
	}

	// Phase 3: record winner moves, then assign deflection slots to
	// losers node by node; slotEpoch doubles as the used-slot marker.
	for _, s := range e.contested {
		w := e.slotWinner[s]
		e.granted[w] = true
		e.moveEpoch[w] = e.epoch
		e.moveSlot[w] = s
	}
	for _, v := range e.occupied {
		e.deflectLosers(t, v)
	}

	// Phase 4: commit all moves simultaneously. Forward-memory entries
	// from the previous use of the curForward array are cleared via its
	// dirty list instead of a full edge sweep.
	for _, ed := range e.curTouched {
		e.curForward[ed] = NoPacket
	}
	e.curTouched = e.curTouched[:0]
	for _, pid := range e.active {
		if e.moveEpoch[pid] != e.epoch {
			panic(fmt.Sprintf("sim: step %d: active packet %d has no move (hot-potato requires all packets to leave)", t, pid))
		}
		if e.moveSlot[pid] == stallSlot {
			continue
		}
		e.applyMove(t, &e.Packets[pid], e.moveSlot[pid])
	}

	// Phase 5: rebuild occupancy from the surviving actives and roll
	// forward-traversal memory, touching only live nodes.
	for _, v := range e.occupied {
		e.at[v] = e.at[v][:0]
	}
	e.occupied = e.occupied[:0]
	keep := e.active[:0]
	for _, pid := range e.active {
		p := &e.Packets[pid]
		if !p.Active {
			continue // absorbed this step
		}
		keep = append(keep, pid)
		e.addAt(p.Cur, pid)
	}
	e.active = keep
	e.prevForward, e.curForward = e.curForward, e.prevForward
	e.prevTouched, e.curTouched = e.curTouched, e.prevTouched

	e.now++
	e.M.Steps = e.now
	for _, o := range e.observers {
		o(t, e)
	}
	e.router.EndStep(t, e)
}

// checkRequest validates that a request leaves the packet's node.
func (e *Engine) checkRequest(p *Packet, req Request) error {
	if req.Edge < 0 || int(req.Edge) >= e.G.NumEdges() {
		return fmt.Errorf("packet %d requested unknown edge %d", p.ID, req.Edge)
	}
	ed := e.G.Edge(req.Edge)
	if ed.From != p.Cur && ed.To != p.Cur {
		return fmt.Errorf("packet %d at node %d requested non-incident edge %d", p.ID, p.Cur, req.Edge)
	}
	if e.G.DirectionFrom(req.Edge, p.Cur) != req.Dir {
		return fmt.Errorf("packet %d at node %d requested edge %d in direction %s which does not leave the node",
			p.ID, p.Cur, req.Edge, req.Dir)
	}
	return nil
}

// deflectLosers assigns outgoing slots to the packets at node v whose
// requests were not granted, preferring (1) the reverse of each
// packet's own arrival, (2) safe backward slots recycled from the
// previous step's forward traversals, (3) any backward slot, (4) any
// forward slot. Under the paper's preconditions only (1) and (2) occur.
func (e *Engine) deflectLosers(t int, v graph.NodeID) {
	e.loserBuf = e.loserBuf[:0]
	for _, pid := range e.at[v] {
		if !e.granted[pid] {
			e.loserBuf = append(e.loserBuf, pid)
		}
	}
	if len(e.loserBuf) == 0 {
		return
	}
	losers := e.loserBuf
	node := e.G.Node(v)

	free := func(s int32) bool {
		if e.slotEpoch[s] == e.epoch {
			return false
		}
		return e.Faults == nil || !e.Faults(slotEdge(s), t)
	}
	assign := func(pid PacketID, s int32, kind DeflectKind) {
		e.slotEpoch[s] = e.epoch
		e.moveEpoch[pid] = e.epoch
		e.moveSlot[pid] = s
		e.M.Deflections[kind]++
		p := &e.Packets[pid]
		p.Deflections++
		e.router.OnDeflect(t, p, slotEdge(s), kind)
	}

	// Pass 1: own arrival reverse.
	remaining := losers[:0]
	for _, pid := range losers {
		p := &e.Packets[pid]
		if p.ArrivalEdge != graph.NoEdge {
			d := p.ArrivalDir.Reverse()
			s := slotIndex(p.ArrivalEdge, d)
			if e.G.EndpointAt(p.ArrivalEdge, d.Reverse()) == v && free(s) {
				assign(pid, s, DeflectArrivalReverse)
				continue
			}
		}
		remaining = append(remaining, pid)
	}
	losers = remaining

	// Pass 2: safe backward (edges forward-traversed last step).
	remaining = losers[:0]
	for _, pid := range losers {
		var chosen int32
		found := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) && e.prevForward[ed] != NoPacket {
				chosen, found = s, true
				break
			}
		}
		if found {
			assign(pid, chosen, DeflectSafeBackward)
		} else {
			remaining = append(remaining, pid)
		}
	}
	losers = remaining

	// Pass 3: any backward; Pass 4: any forward.
	for _, pid := range losers {
		assigned := false
		for _, ed := range node.Down {
			s := slotIndex(ed, graph.Backward)
			if free(s) {
				assign(pid, s, DeflectUnsafeBackward)
				assigned = true
				break
			}
		}
		if assigned {
			continue
		}
		for _, ed := range node.Up {
			s := slotIndex(ed, graph.Forward)
			if free(s) {
				assign(pid, s, DeflectForward)
				assigned = true
				break
			}
		}
		if !assigned {
			if e.Faults != nil {
				// An outage consumed the node's slack: the packet holds
				// for one step (stallSlot), the bufferless model's local
				// escape hatch under faults.
				e.moveEpoch[pid] = e.epoch
				e.moveSlot[pid] = stallSlot
				e.M.FaultStalls++
				continue
			}
			panic(fmt.Sprintf("sim: step %d: node %d: no free slot for deflected packet %d (capacity violated)", t, v, pid))
		}
	}
}

// applyMove commits one traversal and updates path bookkeeping: a
// traversal of the path head pops it, anything else prepends (the
// paper's deflection rule, which also covers wait-state oscillation).
// Pops shift in place rather than re-slicing so the backing array's
// origin is stable and the full capacity returns to the pool on
// absorption.
func (e *Engine) applyMove(t int, p *Packet, s int32) {
	ed, dir := slotEdge(s), slotDir(s)
	dest := e.G.EndpointAt(ed, dir)
	onHead := len(p.PathList) > 0 && p.PathList[0] == ed
	if onHead {
		n := copy(p.PathList, p.PathList[1:])
		p.PathList = p.PathList[:n]
	} else {
		p.PathList = append(p.PathList, 0)
		copy(p.PathList[1:], p.PathList)
		p.PathList[0] = ed
	}
	p.Cur = dest
	p.ArrivalEdge = ed
	p.ArrivalDir = dir
	if dir == graph.Forward {
		p.ForwardMoves++
		e.curForward[ed] = p.ID
		e.curTouched = append(e.curTouched, ed)
	} else {
		p.BackwardMoves++
	}
	e.M.Moves++
	if e.granted[p.ID] {
		e.router.OnMove(t, p)
	}
	if p.Cur == p.Dst {
		p.Active = false
		p.Absorbed = true
		p.AbsorbTime = t + 1
		e.M.Absorbed++
		if cap(p.PathList) > 0 {
			e.pathPool = append(e.pathPool, p.PathList[:0])
			p.PathList = nil
		}
		e.router.OnAbsorb(t, p)
	}
}
