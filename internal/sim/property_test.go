package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

// Property: for arbitrary random leveled networks and workloads, the
// greedy hot-potato engine (a) completes, (b) never exceeds node
// capacity, (c) keeps every current path valid whenever no forward
// deflection occurred, and (d) reports per-packet latency at least the
// preselected path length.
func TestGreedyEngineProperties(t *testing.T) {
	prop := func(seed int64, depthRaw, widthRaw uint8, densityRaw uint8) bool {
		depth := int(depthRaw%20) + 4
		width := int(widthRaw%4) + 2
		density := 0.2 + float64(densityRaw%60)/100
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Random(rng, depth, width, width+2, 0.4)
		if err != nil {
			return false
		}
		p, err := workload.Random(g, rng, density)
		if err != nil {
			// Degenerate draws (no packets) are fine to skip.
			return true
		}
		e := sim.NewEngine(p, baselines.NewGreedy(), seed)
		capacityOK := true
		pathsOK := true
		e.AddObserver(func(step int, en *sim.Engine) {
			for v := 0; v < en.G.NumNodes(); v++ {
				n := en.G.Node(graph.NodeID(v))
				if len(en.At(n.ID)) > n.Degree() {
					capacityOK = false
				}
			}
			if en.M.Deflections[sim.DeflectForward] == 0 {
				for i := range en.Packets {
					pk := &en.Packets[i]
					if pk.Active && !pk.PathValid(en.G) {
						pathsOK = false
					}
				}
			}
		})
		_, done := e.Run(1 << 20)
		if !done || !capacityOK || !pathsOK {
			return false
		}
		for i := range e.Packets {
			if e.Packets[i].Latency() < len(e.Packets[i].Preselected) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: store-and-forward FIFO completion time is at least
// max(C, D) and every packet's latency is at least its path length.
func TestSFEngineProperties(t *testing.T) {
	prop := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw%16) + 4
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Random(rng, depth, 2, 5, 0.4)
		if err != nil {
			return false
		}
		p, err := workload.Random(g, rng, 0.5)
		if err != nil {
			return true
		}
		e := sim.NewSFEngine(p, baselines.NewFIFO(), seed)
		steps, done := e.Run(1 << 20)
		if !done {
			return false
		}
		if steps < p.D {
			return false
		}
		for i := range e.Packets {
			pk := &e.Packets[i]
			if pk.Latency() < len(pk.Preselected) {
				return false
			}
			if pk.Deflections != 0 || pk.BackwardMoves != 0 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: hot-potato conservation — at every step, injected =
// absorbed + active, and the census over nodes matches the active
// count.
func TestEngineConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topo.Random(rng, 12, 2, 4, 0.5)
		if err != nil {
			return false
		}
		p, err := workload.Random(g, rng, 0.5)
		if err != nil {
			return true
		}
		e := sim.NewEngine(p, baselines.NewRandGreedy(0.1), seed)
		ok := true
		e.AddObserver(func(step int, en *sim.Engine) {
			active := 0
			for i := range en.Packets {
				if en.Packets[i].Active {
					active++
				}
			}
			if en.M.Injected != en.M.Absorbed+active {
				ok = false
			}
			census := 0
			for v := 0; v < en.G.NumNodes(); v++ {
				census += len(en.At(graph.NodeID(v)))
			}
			if census != active {
				ok = false
			}
		})
		_, done := e.Run(1 << 20)
		return done && ok
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
