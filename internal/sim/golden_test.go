package sim_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/faults"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_traces.json from the current engine")

// goldenRouters is the golden matrix's router axis. The frame router's
// parameters derive from each problem, so the factory takes it.
func goldenRouters(p *workload.Problem) map[string]func() sim.Router {
	return map[string]func() sim.Router{
		"greedy": func() sim.Router { return baselines.NewGreedy() },
		"oldest": func() sim.Router { return baselines.NewOldestFirst() },
		"frame": func() sim.Router {
			return core.NewFrame(core.ParamsPractical(p.C, p.L(), p.N(),
				core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}))
		},
	}
}

var goldenSeeds = []int64{3, 42}

// traceDigest runs the case and hashes the full router-visible trace
// (every sequential callback plus the final per-packet state) together
// with the engine metrics — the byte-exact identity of a run. An
// optional trailing fault model runs the case under that campaign.
func traceDigest(tb testing.TB, p *workload.Problem, mk func() sim.Router, seed int64, fm ...sim.FaultModel) string {
	tb.Helper()
	m, tr := fullTrace(tb, p, mk, seed, 1, 0, fm...)
	h := sha256.New()
	fmt.Fprintf(h, "%+v\n", m)
	h.Write([]byte(tr))
	return hex.EncodeToString(h.Sum(nil))
}

// goldenCampaign is the fixture matrix's faulted row: steady periodic
// flaps plus a short full-network outage, so both the blocked-request
// path and the stall escape hatch are pinned by the digests. Campaign
// models are pure values, so binding per (problem, seed) here is cheap
// and reproducible.
var goldenCampaign = faults.Overlay(
	faults.Flap{Period: 24, Down: 3, Rate: 0.4},
	faults.LevelBand{Lo: 0, Hi: 1 << 20, From: 10, To: 14},
)

// TestGoldenTraces pins the engine's end-to-end behavior: for a small
// topology x router x seed matrix, the SHA-256 of the complete run
// trace must match the recorded fixture byte for byte. Any change to
// arbitration order, deflection policy, RNG derivation, or commit
// sequencing shows up here before it shows up in a paper figure.
// Regenerate deliberately with:
//
//	go test ./internal/sim/ -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	path := filepath.Join("testdata", "golden_traces.json")
	want := map[string]string{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("corrupt fixture %s: %v", path, err)
		}
	} else if !*updateGolden {
		t.Fatalf("missing fixture %s (run with -update to create): %v", path, err)
	}

	got := map[string]string{}
	for pname, p := range matrixProblems(t) {
		for rname, mk := range goldenRouters(p) {
			for _, seed := range goldenSeeds {
				// The faulted row covers the greedy baselines only: the
				// frame router's fixed timetable is not built to absorb
				// mid-schedule outages, so faulted frame runs may
				// legitimately exhaust the step budget.
				faultModels := map[string]sim.FaultModel{"": nil}
				if rname != "frame" {
					faultModels["/faulted"] = goldenCampaign.Model(p.G, seed)
				}
				for suffix, fm := range faultModels {
					key := fmt.Sprintf("%s/%s/seed=%d%s", pname, rname, seed, suffix)
					fm := fm
					t.Run(key, func(t *testing.T) {
						var d string
						if fm == nil {
							d = traceDigest(t, p, mk, seed)
						} else {
							d = traceDigest(t, p, mk, seed, fm)
						}
						got[key] = d
						if *updateGolden {
							return
						}
						w, ok := want[key]
						if !ok {
							t.Fatalf("no golden digest for %s (run with -update)", key)
						}
						if d != w {
							t.Errorf("trace digest changed:\n got %s\nwant %s\nIf the change is intended, regenerate with -update.", d, w)
						}
					})
				}
			}
		}
	}

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got)) // json marshals maps sorted
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), path)
	} else if len(want) != len(got) {
		t.Errorf("fixture has %d digests, matrix has %d; regenerate with -update", len(want), len(got))
	}
}
