package sim_test

import (
	"math"
	"testing"

	"hotpotato/internal/sim"
)

// chi2Uniform computes the chi-square statistic of observed counts
// against a uniform expectation.
func chi2Uniform(counts []int, total int) float64 {
	expected := float64(total) / float64(len(counts))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2
}

// Critical chi-square values at p=0.001. The draws are deterministic
// (counter-based generators, fixed streams), so a pass is permanent —
// the cutoffs guard against regressions in the mixer, not sampling
// noise.
const (
	chi2Crit63 = 103.5 // df=63
	chi2Crit49 = 85.4  // df=49
)

// TestCoinFloatUniform bins CoinFloat draws across a (step, packet)
// grid into 64 cells and chi-square tests uniformity. A weak mixer —
// e.g. one that only avalanches the low word — concentrates mass and
// fails by orders of magnitude.
func TestCoinFloatUniform(t *testing.T) {
	const bins = 64
	for _, stream := range []uint64{sim.StreamSeed(1, 0xE5), sim.StreamSeed(77, 0xE5)} {
		counts := make([]int, bins)
		total := 0
		for step := 0; step < 200; step++ {
			for pid := sim.PacketID(0); pid < 100; pid++ {
				u := sim.CoinFloat(stream, step, pid)
				if u < 0 || u >= 1 {
					t.Fatalf("CoinFloat out of [0,1): %g", u)
				}
				counts[int(u*bins)]++
				total++
			}
		}
		if chi2 := chi2Uniform(counts, total); chi2 > chi2Crit63 {
			t.Errorf("stream %#x: chi-square %.1f exceeds %.1f (df=63, p=0.001); coin is not uniform",
				stream, chi2, chi2Crit63)
		} else {
			t.Logf("stream %#x: chi-square %.1f (df=63)", stream, chi2)
		}
	}
}

// TestCoinFloatCrossStepIndependence checks that the same packet's
// draws at consecutive steps are independent: the pair (u_t, u_{t+1})
// binned on an 8x8 grid must be uniform, and the serial correlation
// must vanish. A counter-based generator with a linear (un-avalanched)
// step dependence fails both.
func TestCoinFloatCrossStepIndependence(t *testing.T) {
	stream := sim.StreamSeed(3, 0xC01)
	const grid = 8
	counts := make([]int, grid*grid)
	total := 0
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for step := 0; step < 300; step++ {
		for pid := sim.PacketID(0); pid < 80; pid++ {
			x := sim.CoinFloat(stream, step, pid)
			y := sim.CoinFloat(stream, step+1, pid)
			counts[int(x*grid)*grid+int(y*grid)]++
			total++
			sumXY += x * y
			sumX += x
			sumY += y
			sumX2 += x * x
			sumY2 += y * y
		}
	}
	if chi2 := chi2Uniform(counts, total); chi2 > chi2Crit63 {
		t.Errorf("pair grid chi-square %.1f exceeds %.1f (df=63, p=0.001); consecutive-step draws are dependent",
			chi2, chi2Crit63)
	}
	n := float64(total)
	cov := sumXY/n - (sumX/n)*(sumY/n)
	vx := sumX2/n - (sumX/n)*(sumX/n)
	vy := sumY2/n - (sumY/n)*(sumY/n)
	r := cov / math.Sqrt(vx*vy)
	// |r| ~ N(0, 1/sqrt(n)) under independence; 1/sqrt(24000) ~ 0.0065,
	// so 0.025 is a ~4-sigma guard.
	if math.Abs(r) > 0.025 {
		t.Errorf("serial correlation %.4f between steps t and t+1; want ~0", r)
	} else {
		t.Logf("serial correlation %.4f over %d pairs", r, total)
	}
}

// TestArbKeyUniform bins the arbitration key's high bits across
// contenders of one slot and across steps. The key stream decides
// every equal-priority conflict in the engine; bias here is bias in
// who wins (the seed engine's Intn(2) bug, caught end-to-end by
// TestTieBreakUniform, would also have failed a direct key test).
func TestArbKeyUniform(t *testing.T) {
	seed := sim.ArbStreamForTest(42)
	const bins = 64
	counts := make([]int, bins)
	total := 0
	for step := 0; step < 250; step++ {
		for slot := int32(0); slot < 4; slot++ {
			for pid := sim.PacketID(0); pid < 20; pid++ {
				k := sim.ArbKeyForTest(seed, step, slot, pid)
				counts[k>>58]++ // top 6 bits
				total++
			}
		}
	}
	if chi2 := chi2Uniform(counts, total); chi2 > chi2Crit63 {
		t.Errorf("arbKey high-bits chi-square %.1f exceeds %.1f (df=63, p=0.001)", chi2, chi2Crit63)
	} else {
		t.Logf("arbKey high-bits chi-square %.1f (df=63)", chi2)
	}
}

// TestArbKeyCrossStepIndependence: the winner of slot s at step t must
// not predict the winner at step t+1. With two contenders, record who
// holds the larger key at t and at t+1, and chi-square the 2x2
// contingency table for independence (df=1, p=0.001 cutoff 10.83).
func TestArbKeyCrossStepIndependence(t *testing.T) {
	seed := sim.ArbStreamForTest(7)
	var table [2][2]int
	total := 0
	for step := 0; step < 4000; step++ {
		for slot := int32(0); slot < 5; slot++ {
			wNow := 0
			if sim.ArbKeyForTest(seed, step, slot, 1) > sim.ArbKeyForTest(seed, step, slot, 0) {
				wNow = 1
			}
			wNext := 0
			if sim.ArbKeyForTest(seed, step+1, slot, 1) > sim.ArbKeyForTest(seed, step+1, slot, 0) {
				wNext = 1
			}
			table[wNow][wNext]++
			total++
		}
	}
	rows := [2]int{table[0][0] + table[0][1], table[1][0] + table[1][1]}
	cols := [2]int{table[0][0] + table[1][0], table[0][1] + table[1][1]}
	chi2 := 0.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			e := float64(rows[i]) * float64(cols[j]) / float64(total)
			d := float64(table[i][j]) - e
			chi2 += d * d / e
		}
	}
	if chi2 > 10.83 {
		t.Errorf("winner contingency %v: chi-square %.2f exceeds 10.83 (df=1, p=0.001); consecutive-step winners are correlated",
			table, chi2)
	} else {
		t.Logf("winner contingency %v: chi-square %.2f (df=1)", table, chi2)
	}
}

// TestStreamSeedSeparation: streams derived from the same run seed
// with different salts must be unrelated — a router coin must never
// echo engine arbitration. Tested as cross-stream pair uniformity.
func TestStreamSeedSeparation(t *testing.T) {
	a := sim.StreamSeed(5, 0xA5B35705) // the engine-arbitration salt
	b := sim.StreamSeed(5, 0xD15C0)
	if a == b {
		t.Fatal("distinct salts produced the same stream")
	}
	const grid = 8
	counts := make([]int, grid*grid)
	total := 0
	for step := 0; step < 300; step++ {
		for pid := sim.PacketID(0); pid < 80; pid++ {
			x := sim.CoinFloat(a, step, pid)
			y := sim.CoinFloat(b, step, pid)
			counts[int(x*grid)*grid+int(y*grid)]++
			total++
		}
	}
	if chi2 := chi2Uniform(counts, total); chi2 > chi2Crit63 {
		t.Errorf("cross-stream pair chi-square %.1f exceeds %.1f (df=63, p=0.001); salted streams are correlated",
			chi2, chi2Crit63)
	}
}
