package sim_test

import (
	"fmt"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/graph"
	"hotpotato/internal/paths"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// fanProblem builds a k-fan: k sources at level 0 feed a single middle
// node whose only exit is one edge to the destination. All k packets
// meet at the middle on step 1 and contend for the same slot with equal
// priority — the smallest instance of a k-way tie.
//
//	s0..s{k-1}(0) -> m(1) -> x(2)
func fanProblem(t *testing.T, k int) *workload.Problem {
	t.Helper()
	b := graph.NewBuilder(fmt.Sprintf("fan%d", k))
	srcs := make([]graph.NodeID, k)
	for i := range srcs {
		srcs[i] = b.AddNode(0, fmt.Sprintf("s%d", i))
	}
	m := b.AddNode(1, "m")
	x := b.AddNode(2, "x")
	ins := make([]graph.EdgeID, k)
	for i, s := range srcs {
		ins[i] = b.AddEdge(s, m)
	}
	emx := b.AddEdge(m, x)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]graph.Path, k)
	for i := range ps {
		ps[i] = graph.Path{ins[i], emx}
	}
	set := paths.NewPathSet(g, ps)
	if err := set.Validate(); err != nil {
		t.Fatal(err)
	}
	return &workload.Problem{Name: set.G.Name(), G: g, Set: set, C: k, D: 2}
}

// contestWinner runs one seeded k-fan instance long enough for the
// first slot arbitration to resolve and returns the packet that won it
// (the unique packet absorbed at step 2).
func contestWinner(t *testing.T, p *workload.Problem, seed int64) int {
	t.Helper()
	e := sim.NewEngine(p, baselines.NewGreedy(), seed)
	e.Step() // all packets advance to m
	e.Step() // the k-way tie resolves; the winner reaches x
	winner := -1
	for i := range e.Packets {
		if e.Packets[i].Absorbed {
			if winner != -1 {
				t.Fatalf("seed %d: two packets absorbed after the contested step", seed)
			}
			winner = i
		}
	}
	if winner == -1 {
		t.Fatalf("seed %d: no packet won the contested slot", seed)
	}
	return winner
}

// TestTieBreakUniform verifies that a k-way equal-priority tie is won
// by each contender with probability 1/k. The seed engine's pairwise
// coin (Intn(2) against the incumbent) gave the last requester
// probability 1/2 regardless of k; with k=4 and 4000 trials that skew
// yields a chi-square statistic over 1300, against a 0.001-significance
// cutoff of 16.27 for 3 degrees of freedom. Reservoir selection passes.
func TestTieBreakUniform(t *testing.T) {
	cutoff := map[int]float64{ // chi-square upper critical values by df, p=0.001
		2: 13.816,
		3: 16.266,
	}
	for _, k := range []int{3, 4} {
		k := k
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			p := fanProblem(t, k)
			const trials = 4000
			counts := make([]int, k)
			for seed := int64(0); seed < trials; seed++ {
				counts[contestWinner(t, p, seed)]++
			}
			expected := float64(trials) / float64(k)
			chi2 := 0.0
			for _, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
			}
			if crit := cutoff[k-1]; chi2 > crit {
				t.Errorf("winner counts %v: chi-square %.2f exceeds %.2f (df=%d, p=0.001); arbitration is biased",
					counts, chi2, crit, k-1)
			} else {
				t.Logf("winner counts %v: chi-square %.2f (df=%d cutoff %.2f)", counts, chi2, k-1, crit)
			}
		})
	}
}

// TestTieBreakDeterministicPerSeed pins that the fast arbitration RNG
// keeps runs byte-for-byte reproducible: the same seed must always
// crown the same winner.
func TestTieBreakDeterministicPerSeed(t *testing.T) {
	p := fanProblem(t, 4)
	for seed := int64(0); seed < 32; seed++ {
		w1 := contestWinner(t, p, seed)
		w2 := contestWinner(t, p, seed)
		if w1 != w2 {
			t.Fatalf("seed %d: winner %d then %d; arbitration is not deterministic", seed, w1, w2)
		}
	}
}

// TestZeroLengthPathAbsorbedAtInjection covers source==destination
// workloads: a packet with an empty preselected path is absorbed
// immediately at construction, never activates, and never reaches the
// router — so no Request can index an empty PathList.
func TestZeroLengthPathAbsorbedAtInjection(t *testing.T) {
	g, err := buildLinear3(t)
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{{}, {0, 1}})
	p := &workload.Problem{Name: "self", G: g, Set: set, C: 1, D: 2}

	e := sim.NewEngine(p, baselines.NewGreedy(), 1)
	pk := &e.Packets[0]
	if !pk.Absorbed || pk.Active {
		t.Fatalf("zero-length-path packet not pre-absorbed: %+v", pk)
	}
	if pk.Latency() != 0 {
		t.Errorf("latency = %d, want 0", pk.Latency())
	}
	steps, done := e.Run(100)
	if !done {
		t.Fatal("run did not complete")
	}
	if steps != 2 {
		t.Errorf("steps = %d, want 2 (the real packet's path)", steps)
	}
	if e.M.Injected != 2 || e.M.Absorbed != 2 {
		t.Errorf("metrics = %+v, want both packets accounted", e.M)
	}
}

// TestZeroLengthPathSFEngine covers the same degenerate workload in the
// store-and-forward engine.
func TestZeroLengthPathSFEngine(t *testing.T) {
	g, err := buildLinear3(t)
	if err != nil {
		t.Fatal(err)
	}
	set := paths.NewPathSet(g, []graph.Path{{}, {0, 1}})
	p := &workload.Problem{Name: "self-sf", G: g, Set: set, C: 1, D: 2}

	e := sim.NewSFEngine(p, baselines.NewFIFO(), 1)
	if !e.Packets[0].Absorbed {
		t.Fatal("zero-length-path packet not pre-absorbed in SF engine")
	}
	if _, done := e.Run(100); !done {
		t.Fatal("SF run did not complete")
	}
}

func buildLinear3(t *testing.T) (*graph.Leveled, error) {
	t.Helper()
	b := graph.NewBuilder("linear3")
	n0 := b.AddNode(0, "n0")
	n1 := b.AddNode(1, "n1")
	n2 := b.AddNode(2, "n2")
	b.AddEdge(n0, n1)
	b.AddEdge(n1, n2)
	return b.Build()
}
