package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Scheduler decides, for a store-and-forward run, when each packet may
// start and which queued packet crosses each contended edge each step.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Init is called once with the engine before the first step.
	Init(e *SFEngine)
	// ReadyAt returns the earliest step at which the packet may be
	// injected (0 for immediate start; random initial delays implement
	// Leighton-Maggs-Rao-style scheduling).
	ReadyAt(p *Packet) int
	// Pick selects which of the queued packets crosses edge e this
	// step. queue is non-empty; the returned ID must be an element.
	Pick(t int, e graph.EdgeID, queue []PacketID) PacketID
}

// SFMetrics aggregates store-and-forward run counters.
type SFMetrics struct {
	Steps       int
	Injected    int
	Absorbed    int
	Moves       int
	QueueDelay  int // total packet-steps spent waiting in queues
	MaxQueueLen int // peak per-edge queue length
	// Blocked counts (edge, step) pairs at which a picked packet could
	// not advance because the downstream buffer was full (bounded mode
	// only).
	Blocked int
	// InjectionBlocked counts (packet, step) pairs in which a ready
	// packet could not enter its first queue for lack of buffer space.
	InjectionBlocked int
}

// SFEngine is the synchronous store-and-forward engine: each edge holds
// a queue of waiting packets at its From node and forwards one per step
// (packets move only forward along their preselected paths). With
// Cap == 0 buffers are unbounded, the classic O(C+D) setting; with
// Cap > 0 each edge queue holds at most Cap packets and full buffers
// exert backpressure — the constant-buffer regime of Leighton et al.
// [16] that the paper cites for leveled networks. Forward-only paths on
// a DAG make backpressure deadlock-free: the topmost occupied queue can
// always drain.
//
// Like the hot-potato Engine, the step loop touches only live state: a
// pending-injection list replaces the full packet rescan, and the move
// loop visits only edges with non-empty queues (in the same
// From-level-descending order as before) instead of sweeping every
// edge.
type SFEngine struct {
	G       *graph.Leveled
	Packets []Packet
	Rng     *rand.Rand
	M       SFMetrics
	// Cap is the per-edge buffer capacity (0 = unbounded). Set before
	// the first Step.
	Cap int

	sched Scheduler
	now   int
	seed  int64

	// Instrumentation (probe.go). Per-run attachments, cleared by Reset;
	// all step-loop uses are nil-gated so the disabled path stays free.
	probe  SFProbe
	events EventSink
	snap   StepSnapshot
	lastM  SFMetrics

	// queue[e] lists packets waiting to cross edge e.
	queue   [][]PacketID
	readyAt []int
	// pendingInject lists never-injected packets in ID order.
	pendingInject []PacketID
	// edgesByLevelDesc lists edge IDs ordered by From-level descending,
	// so draining the top first frees buffers for upstream moves within
	// the same step.
	edgesByLevelDesc []graph.EdgeID
	// descPos[e] is edge e's position in edgesByLevelDesc. activePos
	// lists, in ascending order, the positions of edges with non-empty
	// queues; newPos stages positions of edges that just went
	// empty->non-empty, merged (and re-sorted) at the top of each step.
	// Ascending position order equals descending From-level order, so
	// iterating activePos drains top levels first exactly as a full
	// sweep of edgesByLevelDesc did.
	descPos   []int32
	activePos []int32
	newPos    []int32
}

// NewSFEngine builds a store-and-forward engine with unbounded buffers.
func NewSFEngine(p *workload.Problem, s Scheduler, seed int64) *SFEngine {
	return NewSFEngineBuffered(p, s, seed, 0)
}

// NewSFEngineBuffered builds a store-and-forward engine whose per-edge
// queues hold at most cap packets (cap <= 0 means unbounded). As in
// NewEngine, a packet with an empty preselected path is absorbed
// immediately at step 0.
func NewSFEngineBuffered(p *workload.Problem, s Scheduler, seed int64, cap int) *SFEngine {
	if cap < 0 {
		cap = 0
	}
	e := &SFEngine{
		G:     p.G,
		Rng:   rand.New(rand.NewSource(seed)),
		Cap:   cap,
		sched: s,
		queue: make([][]PacketID, p.G.NumEdges()),
	}
	e.Packets = make([]Packet, p.N())
	for i, path := range p.Set.Paths {
		e.Packets[i].Preselected = path
	}
	e.pendingInject = make([]PacketID, 0, p.N())
	e.readyAt = make([]int, p.N())
	e.edgesByLevelDesc = make([]graph.EdgeID, p.G.NumEdges())
	for i := range e.edgesByLevelDesc {
		e.edgesByLevelDesc[i] = graph.EdgeID(i)
	}
	sort.SliceStable(e.edgesByLevelDesc, func(i, j int) bool {
		li := p.G.Node(p.G.Edge(e.edgesByLevelDesc[i]).From).Level
		lj := p.G.Node(p.G.Edge(e.edgesByLevelDesc[j]).From).Level
		return li > lj
	})
	e.descPos = make([]int32, p.G.NumEdges())
	for pos, eid := range e.edgesByLevelDesc {
		e.descPos[eid] = int32(pos)
	}
	e.Reset(seed)
	return e
}

// Reset rewinds the engine to step 0 with a new seed, reusing every
// allocation — queue backing arrays, path lists and the level-order
// index all survive — mirroring Engine.Reset so Monte-Carlo workers can
// reuse one store-and-forward engine across trials. The scheduler is
// re-initialized and initial delays are re-drawn for the new seed.
func (e *SFEngine) Reset(seed int64) {
	e.seed = seed
	e.Rng.Seed(seed)
	e.M = SFMetrics{}
	e.now = 0
	e.probe = nil
	e.events = nil
	e.lastM = SFMetrics{}
	// Every non-empty queue is registered in activePos or staged in
	// newPos (enqueue's invariant), so clearing through those lists
	// touches only dirty queues.
	for _, pos := range e.activePos {
		eid := e.edgesByLevelDesc[pos]
		e.queue[eid] = e.queue[eid][:0]
	}
	for _, pos := range e.newPos {
		eid := e.edgesByLevelDesc[pos]
		e.queue[eid] = e.queue[eid][:0]
	}
	e.activePos = e.activePos[:0]
	e.newPos = e.newPos[:0]
	e.pendingInject = e.pendingInject[:0]
	for i := range e.Packets {
		p := &e.Packets[i]
		pathBuf := p.PathList
		*p = Packet{
			ID:          PacketID(i),
			Cur:         graph.NoNode,
			Src:         graph.NoNode,
			Dst:         graph.NoNode,
			Preselected: p.Preselected,
			InjectTime:  -1,
			AbsorbTime:  -1,
			ArrivalEdge: graph.NoEdge,
		}
		if pathBuf != nil {
			p.PathList = pathBuf[:0]
		}
		if len(p.Preselected) > 0 {
			p.Src = e.G.PathSource(p.Preselected)
			p.Dst = e.G.PathDest(p.Preselected)
			e.pendingInject = append(e.pendingInject, p.ID)
		} else {
			p.Absorbed = true
			p.InjectTime = 0
			p.AbsorbTime = 0
			e.M.Injected++
			e.M.Absorbed++
		}
	}
	e.sched.Init(e)
	for i := range e.Packets {
		if e.Packets[i].Absorbed {
			continue
		}
		r := e.sched.ReadyAt(&e.Packets[i])
		if r < 0 {
			r = 0
		}
		e.readyAt[i] = r
	}
}

// Seed returns the seed of the current run.
func (e *SFEngine) Seed() int64 { return e.seed }

// Now returns the current step number.
func (e *SFEngine) Now() int { return e.now }

// Done reports whether every packet has been absorbed.
func (e *SFEngine) Done() bool { return e.M.Absorbed == len(e.Packets) }

// Run executes steps until completion or maxSteps; it returns the steps
// executed and whether the run completed.
func (e *SFEngine) Run(maxSteps int) (int, bool) {
	for e.now < maxSteps && !e.Done() {
		e.Step()
	}
	return e.now, e.Done()
}

// hasRoom reports whether queue q can accept one more packet.
func (e *SFEngine) hasRoom(q graph.EdgeID) bool {
	return e.Cap == 0 || len(e.queue[q]) < e.Cap
}

// enqueue appends a packet to an edge queue, staging the edge for the
// active list if its queue was empty.
func (e *SFEngine) enqueue(eid graph.EdgeID, pid PacketID) {
	if len(e.queue[eid]) == 0 {
		e.newPos = append(e.newPos, e.descPos[eid])
	}
	e.queue[eid] = append(e.queue[eid], pid)
}

// mergeActive folds the staged newly-non-empty edge positions into the
// sorted active list. The active list is nearly sorted already (new
// positions arrive in processing order), so an insertion sort is
// effectively linear.
func (e *SFEngine) mergeActive() {
	if len(e.newPos) == 0 {
		return
	}
	e.activePos = append(e.activePos, e.newPos...)
	e.newPos = e.newPos[:0]
	for i := 1; i < len(e.activePos); i++ {
		v := e.activePos[i]
		j := i - 1
		for j >= 0 && e.activePos[j] > v {
			e.activePos[j+1] = e.activePos[j]
			j--
		}
		e.activePos[j+1] = v
	}
}

// Step executes one synchronous store-and-forward step: inject newly
// ready packets into their first edge's queue (if it has room), then
// move one packet across every non-empty edge, draining top levels
// first so that freed buffer slots become available upstream within the
// same step.
func (e *SFEngine) Step() {
	t := e.now

	// Injection: a ready packet joins the queue of its first edge.
	if len(e.pendingInject) > 0 {
		keep := e.pendingInject[:0]
		for _, pid := range e.pendingInject {
			p := &e.Packets[pid]
			if t < e.readyAt[pid] {
				keep = append(keep, pid)
				continue
			}
			first := p.Preselected[0]
			if !e.hasRoom(first) {
				e.M.InjectionBlocked++
				keep = append(keep, pid)
				continue
			}
			p.Active = true
			p.Cur = p.Src
			p.InjectTime = t
			p.PathList = append(p.PathList[:0], p.Preselected...)
			e.enqueue(first, pid)
			e.M.Injected++
			if e.events != nil {
				e.events.RecordEvent(t, pid, EventInject, int32(p.Src))
			}
		}
		e.pendingInject = keep
	}

	// Moves, top levels first. A packet granted a move commits
	// immediately; because levels are processed in descending order no
	// packet can be granted twice in a step (its new queue sits at a
	// level already processed, and an edge newly occupied this step
	// joins the active list only at the next step's merge).
	e.mergeActive()
	keep := e.activePos[:0]
	for _, pos := range e.activePos {
		eid := e.edgesByLevelDesc[pos]
		q := e.queue[eid]
		if len(q) == 0 {
			continue
		}
		if len(q) > e.M.MaxQueueLen {
			e.M.MaxQueueLen = len(q)
		}
		pick := e.sched.Pick(t, eid, q)
		found := false
		for _, pid := range q {
			if pid == pick {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sim: scheduler %s picked packet %d not in queue of edge %d", e.sched.Name(), pick, eid))
		}
		p := &e.Packets[pick]
		// Downstream room check: absorption needs none; otherwise the
		// next edge's queue must accept the packet.
		if len(p.PathList) > 1 && !e.hasRoom(p.PathList[1]) {
			e.M.Blocked++
			e.M.QueueDelay += len(q)
			if e.events != nil {
				e.events.RecordEvent(t, pick, EventStall, 0)
			}
			keep = append(keep, pos)
			continue
		}
		e.M.QueueDelay += len(q) - 1 // everyone else waits this step

		// Remove from queue preserving order, then advance.
		for i, pid := range q {
			if pid == pick {
				e.queue[eid] = append(q[:i], q[i+1:]...)
				break
			}
		}
		n := copy(p.PathList, p.PathList[1:])
		p.PathList = p.PathList[:n]
		p.Cur = e.G.Edge(eid).To
		p.ForwardMoves++
		e.M.Moves++
		if len(p.PathList) == 0 {
			if p.Cur != p.Dst {
				panic(fmt.Sprintf("sim: packet %d exhausted path at node %d != dst %d", p.ID, p.Cur, p.Dst))
			}
			p.Active = false
			p.Absorbed = true
			p.AbsorbTime = t + 1
			e.M.Absorbed++
			if e.events != nil {
				e.events.RecordEvent(t, pick, EventAbsorb, int32(p.Cur))
			}
		} else {
			e.enqueue(p.PathList[0], pick)
		}
		if len(e.queue[eid]) > 0 {
			keep = append(keep, pos)
		}
	}
	e.activePos = keep

	e.now++
	e.M.Steps = e.now
	if e.probe != nil {
		e.emitSFSnapshot(t)
	}
}
