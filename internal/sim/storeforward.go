package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"hotpotato/internal/graph"
	"hotpotato/internal/workload"
)

// Scheduler decides, for a store-and-forward run, when each packet may
// start and which queued packet crosses each contended edge each step.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Init is called once with the engine before the first step.
	Init(e *SFEngine)
	// ReadyAt returns the earliest step at which the packet may be
	// injected (0 for immediate start; random initial delays implement
	// Leighton-Maggs-Rao-style scheduling).
	ReadyAt(p *Packet) int
	// Pick selects which of the queued packets crosses edge e this
	// step. queue is non-empty; the returned ID must be an element.
	Pick(t int, e graph.EdgeID, queue []PacketID) PacketID
}

// SFMetrics aggregates store-and-forward run counters.
type SFMetrics struct {
	Steps       int
	Injected    int
	Absorbed    int
	Moves       int
	QueueDelay  int // total packet-steps spent waiting in queues
	MaxQueueLen int // peak per-edge queue length
	// Blocked counts (edge, step) pairs at which a picked packet could
	// not advance because the downstream buffer was full (bounded mode
	// only).
	Blocked int
	// InjectionBlocked counts (packet, step) pairs in which a ready
	// packet could not enter its first queue for lack of buffer space.
	InjectionBlocked int
}

// SFEngine is the synchronous store-and-forward engine: each edge holds
// a queue of waiting packets at its From node and forwards one per step
// (packets move only forward along their preselected paths). With
// Cap == 0 buffers are unbounded, the classic O(C+D) setting; with
// Cap > 0 each edge queue holds at most Cap packets and full buffers
// exert backpressure — the constant-buffer regime of Leighton et al.
// [16] that the paper cites for leveled networks. Forward-only paths on
// a DAG make backpressure deadlock-free: the topmost occupied queue can
// always drain.
type SFEngine struct {
	G       *graph.Leveled
	Packets []Packet
	Rng     *rand.Rand
	M       SFMetrics
	// Cap is the per-edge buffer capacity (0 = unbounded). Set before
	// the first Step.
	Cap int

	sched Scheduler
	now   int

	// queue[e] lists packets waiting to cross edge e.
	queue   [][]PacketID
	readyAt []int
	// edgesByLevelDesc lists edge IDs ordered by From-level descending,
	// so draining the top first frees buffers for upstream moves within
	// the same step.
	edgesByLevelDesc []graph.EdgeID
}

// NewSFEngine builds a store-and-forward engine with unbounded buffers.
func NewSFEngine(p *workload.Problem, s Scheduler, seed int64) *SFEngine {
	return NewSFEngineBuffered(p, s, seed, 0)
}

// NewSFEngineBuffered builds a store-and-forward engine whose per-edge
// queues hold at most cap packets (cap <= 0 means unbounded).
func NewSFEngineBuffered(p *workload.Problem, s Scheduler, seed int64, cap int) *SFEngine {
	if cap < 0 {
		cap = 0
	}
	e := &SFEngine{
		G:     p.G,
		Rng:   rand.New(rand.NewSource(seed)),
		Cap:   cap,
		sched: s,
		queue: make([][]PacketID, p.G.NumEdges()),
	}
	e.Packets = make([]Packet, p.N())
	for i, path := range p.Set.Paths {
		e.Packets[i] = Packet{
			ID:          PacketID(i),
			Src:         p.G.PathSource(path),
			Dst:         p.G.PathDest(path),
			Preselected: path,
			Cur:         graph.NoNode,
			InjectTime:  -1,
			AbsorbTime:  -1,
			ArrivalEdge: graph.NoEdge,
		}
	}
	e.edgesByLevelDesc = make([]graph.EdgeID, p.G.NumEdges())
	for i := range e.edgesByLevelDesc {
		e.edgesByLevelDesc[i] = graph.EdgeID(i)
	}
	sort.SliceStable(e.edgesByLevelDesc, func(i, j int) bool {
		li := p.G.Node(p.G.Edge(e.edgesByLevelDesc[i]).From).Level
		lj := p.G.Node(p.G.Edge(e.edgesByLevelDesc[j]).From).Level
		return li > lj
	})
	s.Init(e)
	e.readyAt = make([]int, p.N())
	for i := range e.Packets {
		r := s.ReadyAt(&e.Packets[i])
		if r < 0 {
			r = 0
		}
		e.readyAt[i] = r
	}
	return e
}

// Now returns the current step number.
func (e *SFEngine) Now() int { return e.now }

// Done reports whether every packet has been absorbed.
func (e *SFEngine) Done() bool { return e.M.Absorbed == len(e.Packets) }

// Run executes steps until completion or maxSteps; it returns the steps
// executed and whether the run completed.
func (e *SFEngine) Run(maxSteps int) (int, bool) {
	for e.now < maxSteps && !e.Done() {
		e.Step()
	}
	return e.now, e.Done()
}

// hasRoom reports whether queue q can accept one more packet.
func (e *SFEngine) hasRoom(q graph.EdgeID) bool {
	return e.Cap == 0 || len(e.queue[q]) < e.Cap
}

// Step executes one synchronous store-and-forward step: inject newly
// ready packets into their first edge's queue (if it has room), then
// move one packet across every non-empty edge, draining top levels
// first so that freed buffer slots become available upstream within the
// same step.
func (e *SFEngine) Step() {
	t := e.now

	// Injection: a ready packet joins the queue of its first edge.
	for i := range e.Packets {
		p := &e.Packets[i]
		if p.Active || p.Absorbed || t < e.readyAt[i] {
			continue
		}
		first := p.Preselected[0]
		if !e.hasRoom(first) {
			e.M.InjectionBlocked++
			continue
		}
		p.Active = true
		p.Cur = p.Src
		p.InjectTime = t
		p.PathList = append(p.PathList[:0], p.Preselected...)
		e.queue[first] = append(e.queue[first], p.ID)
		e.M.Injected++
	}

	// Moves, top levels first. A packet granted a move commits
	// immediately; because levels are processed in descending order no
	// packet can be granted twice in a step (its new queue sits at a
	// level already processed).
	for _, eid := range e.edgesByLevelDesc {
		q := e.queue[eid]
		if len(q) == 0 {
			continue
		}
		if len(q) > e.M.MaxQueueLen {
			e.M.MaxQueueLen = len(q)
		}
		pick := e.sched.Pick(t, eid, q)
		found := false
		for _, pid := range q {
			if pid == pick {
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sim: scheduler %s picked packet %d not in queue of edge %d", e.sched.Name(), pick, eid))
		}
		p := &e.Packets[pick]
		// Downstream room check: absorption needs none; otherwise the
		// next edge's queue must accept the packet.
		if len(p.PathList) > 1 && !e.hasRoom(p.PathList[1]) {
			e.M.Blocked++
			e.M.QueueDelay += len(q)
			continue
		}
		e.M.QueueDelay += len(q) - 1 // everyone else waits this step

		// Remove from queue preserving order, then advance.
		for i, pid := range q {
			if pid == pick {
				e.queue[eid] = append(q[:i], q[i+1:]...)
				break
			}
		}
		p.PathList = p.PathList[1:]
		p.Cur = e.G.Edge(eid).To
		p.ForwardMoves++
		e.M.Moves++
		if len(p.PathList) == 0 {
			if p.Cur != p.Dst {
				panic(fmt.Sprintf("sim: packet %d exhausted path at node %d != dst %d", p.ID, p.Cur, p.Dst))
			}
			p.Active = false
			p.Absorbed = true
			p.AbsorbTime = t + 1
			e.M.Absorbed++
		} else {
			e.queue[p.PathList[0]] = append(e.queue[p.PathList[0]], p.ID)
		}
	}

	e.now++
	e.M.Steps = e.now
}
