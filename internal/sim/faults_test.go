package sim_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/baselines"
	"hotpotato/internal/core"
	"hotpotato/internal/graph"
	"hotpotato/internal/sim"
	"hotpotato/internal/topo"
	"hotpotato/internal/workload"
)

func TestPeriodicFaultBlocksAndRecovers(t *testing.T) {
	// One packet on a ladder whose preferred first edge is down for the
	// first 3 steps: the packet must deflect around or wait it out, and
	// still deliver.
	g, err := topo.Ladder(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	p, err := workload.Random(g, rng, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Set.Paths[0][0]
	e := sim.NewEngine(p, baselines.NewGreedy(), 2)
	e.Faults = sim.PeriodicFault(first, 0, 3)
	steps, done := e.Run(100000)
	if !done {
		t.Fatalf("did not complete under a 3-step outage (steps=%d)", steps)
	}
	if e.M.FaultBlocked == 0 {
		t.Error("outage never blocked anything")
	}
}

func TestHashFaultsDeterministicAndRateBound(t *testing.T) {
	f := sim.HashFaults(7, 0.1, 5)
	downs := 0
	total := 0
	for e := graph.EdgeID(0); e < 200; e++ {
		for tt := 0; tt < 100; tt += 5 {
			total++
			a, b := f(e, tt), f(e, tt)
			if a != b {
				t.Fatalf("not deterministic at (%d,%d)", e, tt)
			}
			if a {
				downs++
			}
		}
	}
	rate := float64(downs) / float64(total)
	if rate < 0.05 || rate > 0.2 {
		t.Errorf("empirical fault rate %.3f, want near 0.1", rate)
	}
	// Within a window the state is constant.
	if f(3, 10) != f(3, 14) {
		t.Error("fault state changed within a window")
	}
}

func TestGreedyDeliversUnderRandomFaults(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p, err := workload.HotSpot(g, rng, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	healthy := sim.NewEngine(p, baselines.NewGreedy(), 4)
	hs, done := healthy.Run(1 << 20)
	if !done {
		t.Fatal("healthy run did not complete")
	}
	faulty := sim.NewEngine(p, baselines.NewGreedy(), 4)
	faulty.Faults = sim.HashFaults(9, 0.05, 8)
	fs, done := faulty.Run(1 << 20)
	if !done {
		t.Fatal("faulty run did not complete")
	}
	if fs < hs {
		t.Errorf("faults sped things up? healthy=%d faulty=%d", hs, fs)
	}
	if faulty.M.FaultBlocked == 0 {
		t.Error("no fault blocks recorded at 5% edge downtime")
	}
}

func TestComposeFaults(t *testing.T) {
	f := sim.ComposeFaults(sim.PeriodicFault(1, 0, 10), sim.PeriodicFault(2, 5, 15), nil)
	if !f(1, 3) || !f(2, 7) {
		t.Error("composition missed a member fault")
	}
	if f(1, 12) || f(3, 3) {
		t.Error("composition invented a fault")
	}
	if sim.NoFaults(1, 1) {
		t.Error("NoFaults is faulty")
	}
}

// TestEngineResetAfterFaultsMatchesFresh: a faulted run leaves no
// residue. An engine that ran to completion under HashFaults, had its
// fault model removed and was Reset, must reproduce a fresh healthy
// engine's run byte for byte — metrics, full router-visible trace,
// and zeroed fault counters.
func TestEngineResetAfterFaultsMatchesFresh(t *testing.T) {
	g, err := topo.Butterfly(5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	p, err := workload.HotSpot(g, rng, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	for rname, mk := range map[string]func() sim.Router{
		"greedy": func() sim.Router { return baselines.NewGreedy() },
		"frame": func() sim.Router {
			return core.NewFrame(core.ParamsPractical(p.C, p.L(), p.N(),
				core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3}))
		},
	} {
		t.Run(rname, func(t *testing.T) {
			wantM, wantTr := fullTrace(t, p, mk, 5, 1, 0)

			router, rec := wrapRecorder(mk())
			e := sim.NewEngine(p, router, 99)
			defer e.Close()
			e.Faults = sim.HashFaults(9, 0.05, 8)
			if _, done := e.Run(1 << 20); !done {
				t.Fatal("faulted run did not complete")
			}
			if e.M.FaultBlocked == 0 {
				t.Fatal("faulted run recorded no blocks; the scenario is vacuous")
			}

			e.Faults = nil
			e.Reset(5)
			rec.log.Reset()
			if _, done := e.Run(100000); !done {
				t.Fatal("post-fault reset run did not complete")
			}
			var b strings.Builder
			b.WriteString(rec.log.String())
			for i := range e.Packets {
				pk := &e.Packets[i]
				fmt.Fprintf(&b, "p %d %d %d %d %d %d %d %v\n", pk.ID, pk.Cur,
					pk.InjectTime, pk.AbsorbTime, pk.Deflections,
					pk.ForwardMoves, pk.BackwardMoves, pk.PathList)
			}
			if e.M.FaultBlocked != 0 || e.M.FaultStalls != 0 {
				t.Errorf("fault counters survived Reset: %+v", e.M)
			}
			if e.M != wantM {
				t.Errorf("metrics differ after faulted run + Reset:\n got %+v\nwant %+v", e.M, wantM)
			}
			if b.String() != wantTr {
				t.Error("trace differs after faulted run + Reset")
			}
		})
	}
}

func TestFrameDeliversUnderLightFaults(t *testing.T) {
	// The frame router was not designed for faults; under light
	// transient outages it must still deliver (self-healing retrace),
	// with invariant violations as the measurable cost.
	rng := rand.New(rand.NewSource(5))
	g, err := topo.Random(rng, 20, 3, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Random(g, rng, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	params := core.ParamsPractical(p.C, p.L(), p.N(),
		core.PracticalConfig{SetCongestion: 4, FrameSlack: 3, RoundFactor: 3})
	router := core.NewFrame(params)
	e := sim.NewEngine(p, router, 6)
	e.Faults = sim.HashFaults(11, 0.02, 10)
	steps, done := e.Run(16 * params.TotalSteps(p.L()))
	if !done {
		t.Fatalf("frame under faults did not complete (steps=%d)", steps)
	}
}
