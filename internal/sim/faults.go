package sim

import (
	"hotpotato/internal/graph"
)

// FaultModel reports whether an edge is down at a step. A downed edge
// carries no traffic in either direction: requests for it lose and the
// packet is deflected; deflection assignment skips it. Fault models
// must be pure, deterministic functions of (edge, step) — the sharded
// parallel step (SetParallelism) calls them concurrently from several
// goroutines, and reproducibility requires the same answer on every
// worker schedule — and must leave every node enough healthy slots for
// its occupants; the engine's capacity panic is the overload signal.
type FaultModel func(e graph.EdgeID, t int) bool

// NoFaults is the all-healthy model.
func NoFaults(graph.EdgeID, int) bool { return false }

// HashFaults derives a memoryless fault process from a hash: each edge
// is down for whole windows of `duration` steps, independently per
// (edge, window), with probability rate. Deterministic in (seed, edge,
// step).
func HashFaults(seed int64, rate float64, duration int) FaultModel {
	if duration < 1 {
		duration = 1
	}
	threshold := uint64(rate * (1 << 32))
	return func(e graph.EdgeID, t int) bool {
		w := uint64(t/duration) + 1
		x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(e)*0xbf58476d1ce4e5b9 ^ w*0x94d049bb133111eb
		// SplitMix64 finalizer.
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return uint32(x) < uint32(threshold)
	}
}

// PeriodicFault takes one specific edge down during [from, to).
func PeriodicFault(edge graph.EdgeID, from, to int) FaultModel {
	return func(e graph.EdgeID, t int) bool {
		return e == edge && t >= from && t < to
	}
}

// ComposeFaults ORs several fault models.
func ComposeFaults(models ...FaultModel) FaultModel {
	return func(e graph.EdgeID, t int) bool {
		for _, m := range models {
			if m != nil && m(e, t) {
				return true
			}
		}
		return false
	}
}
