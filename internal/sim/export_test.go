package sim

import "hotpotato/internal/graph"

// Test-only exports: the statistical tests exercise the unexported
// counter-based generators directly.
var (
	ArbKeyForTest    = arbKey
	ArbStreamForTest = arbStream
)

// PartitionBlocksForTest installs occ as the engine's occupied list,
// runs the window-sharded partitioner, and returns each shard's block.
// The skew test asserts the blocks are balanced to within one node and
// concatenate to occ in order.
func PartitionBlocksForTest(e *Engine, occ []graph.NodeID) [][]graph.NodeID {
	saved := e.occupied
	e.occupied = occ
	k := e.partitionOccupied()
	out := make([][]graph.NodeID, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, e.shards[i].occ)
		e.shards[i].occ = nil
	}
	e.occupied = saved
	return out
}

// MinParallelOccupiedForTest exposes the small-window sequential
// cutoff, so tests can build workloads that straddle it.
const MinParallelOccupiedForTest = minParallelOccupied

// SetLegacyInjectForTest disables (v=true) or re-enables (v=false) the
// InjectionPlanner release queue, restoring the legacy full pending
// sweep. Takes effect at the next Reset — call it before Reset(seed) so
// the run starts under the chosen injection path. The differential
// harness uses it to assert the two paths commit byte-identical traces.
func SetLegacyInjectForTest(e *Engine, v bool) { e.legacyInject = v }
