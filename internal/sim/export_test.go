package sim

// Test-only exports: the statistical tests exercise the unexported
// counter-based generators directly.
var (
	ArbKeyForTest    = arbKey
	ArbStreamForTest = arbStream
)

// SetLegacyInjectForTest disables (v=true) or re-enables (v=false) the
// InjectionPlanner release queue, restoring the legacy full pending
// sweep. Takes effect at the next Reset — call it before Reset(seed) so
// the run starts under the chosen injection path. The differential
// harness uses it to assert the two paths commit byte-identical traces.
func SetLegacyInjectForTest(e *Engine, v bool) { e.legacyInject = v }
