package sim

// Test-only exports: the statistical tests exercise the unexported
// counter-based generators directly.
var (
	ArbKeyForTest    = arbKey
	ArbStreamForTest = arbStream
)
