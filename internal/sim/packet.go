// Package sim implements the synchronous network machinery the paper
// assumes (Section 1.1): time is discrete; at each step a node receives
// packets, makes a routing decision, and forwards them; at most one
// packet traverses each edge in each direction per step.
//
// Two engines are provided. Engine is the hot-potato (bufferless)
// engine: every packet at a node must leave at every step, losers of
// link conflicts are deflected, preferentially backward and safe in the
// paper's sense (Section 2.3). SFEngine is a store-and-forward engine
// with per-edge output queues, used by the buffered baselines.
package sim

import (
	"fmt"

	"hotpotato/internal/graph"
)

// PacketID indexes a packet within a simulation. IDs are dense:
// 0..NumPackets-1, matching the workload's path indices.
type PacketID int32

// NoPacket is the sentinel for "no packet".
const NoPacket PacketID = -1

// Packet is the dynamic record of one packet. The routing algorithm
// reads it; only the engine mutates it.
//
// Field order is deliberate: the members the per-step hot path touches
// — identity, current node, path-list header, arrival traversal, state
// bits and the router's tag — are grouped at the front so they share
// the packet's first cache line; the per-run constants and counters
// follow. Reordering here is purely a layout concern (no observable
// behavior depends on it), but keep hot fields leading when adding new
// ones.
type Packet struct {
	ID PacketID
	// Cur is the node the packet occupies (meaningful while Active).
	Cur graph.NodeID
	Dst graph.NodeID
	// ArrivalEdge/ArrivalDir record the traversal that brought the
	// packet to Cur (NoEdge right after injection). The reverse of this
	// traversal is the preferred — and always safe — deflection slot.
	ArrivalEdge graph.EdgeID

	// PathList is the current path in the paper's sense (Section 2.2):
	// the edges remaining between Cur and Dst. A forward traversal of
	// the head pops it; a deflection prepends the deflection edge. The
	// head edge is always incident to Cur.
	PathList []graph.EdgeID

	ArrivalDir graph.Direction
	// HeadDir is the direction in which the path-list head leaves Cur,
	// maintained by the engine (valid while PathList is non-empty).
	// Routers requesting the head traversal should use it instead of a
	// graph lookup: it spares the hot path the scattered edge-endpoint
	// load that an explicit DirectionFrom would cost.
	HeadDir graph.Direction
	// Active is true between injection and absorption.
	Active bool
	// Absorbed is true once the packet has reached Dst.
	Absorbed bool

	Src graph.NodeID

	// Tag is algorithm-owned scratch (the frame router stores the
	// frontier-set index here).
	Tag int32

	// InjectTime and AbsorbTime are the steps of injection/absorption,
	// -1 until they happen.
	InjectTime int
	AbsorbTime int

	// Preselected is the packet's immutable preselected path.
	Preselected graph.Path

	// Counters.
	Deflections   int
	ForwardMoves  int
	BackwardMoves int
}

// CurrentLevel returns the level of the packet's current node.
func (p *Packet) CurrentLevel(g *graph.Leveled) int {
	return g.LevelOf(p.Cur)
}

// HeadDirection returns the direction in which the head of the path
// list leaves Cur. It panics if the path list is empty.
func (p *Packet) HeadDirection(g *graph.Leveled) graph.Direction {
	return g.DirectionFrom(p.PathList[0], p.Cur)
}

// PathValid reports whether the current path list is a valid forward
// path beginning at Cur — the paper's validity invariant (Lemma 2.1).
func (p *Packet) PathValid(g *graph.Leveled) bool {
	if len(p.PathList) == 0 {
		return p.Cur == p.Dst
	}
	if g.Edge(p.PathList[0]).From != p.Cur {
		return false
	}
	if err := g.ValidatePath(p.PathList); err != nil {
		return false
	}
	return g.PathDest(p.PathList) == p.Dst
}

// Latency returns AbsorbTime - InjectTime, or -1 if not yet absorbed.
func (p *Packet) Latency() int {
	if !p.Absorbed {
		return -1
	}
	return p.AbsorbTime - p.InjectTime
}

// Request is a packet's desired traversal for the current step.
type Request struct {
	// Edge must be incident to the packet's current node.
	Edge graph.EdgeID
	// Dir must be the direction leaving the current node along Edge.
	Dir graph.Direction
	// Priority orders conflicting requests; higher wins. The frame
	// router maps states to priorities (excited > normal > wait).
	Priority int64
}

// DeflectKind classifies how a deflection slot was chosen, mirroring
// the paper's taxonomy: reversing one's own arrival and recycling
// another packet's just-traversed edge are both safe (Section 2.3);
// the remaining kinds never occur under the paper's preconditions and
// are counted as violations when they do.
type DeflectKind int8

const (
	// DeflectArrivalReverse: the loser retraces its own arrival
	// traversal (safe; backward whenever the arrival was forward).
	DeflectArrivalReverse DeflectKind = iota
	// DeflectSafeBackward: the loser takes a down-edge that another
	// packet traversed forward at the previous step (safe deflection;
	// the edge is recycled between path lists).
	DeflectSafeBackward
	// DeflectUnsafeBackward: a backward slot with no recycled edge.
	DeflectUnsafeBackward
	// DeflectForward: a forward slot; the packet is pushed up a level
	// off its path.
	DeflectForward
)

// String implements fmt.Stringer.
func (k DeflectKind) String() string {
	switch k {
	case DeflectArrivalReverse:
		return "arrival-reverse"
	case DeflectSafeBackward:
		return "safe-backward"
	case DeflectUnsafeBackward:
		return "unsafe-backward"
	case DeflectForward:
		return "forward"
	}
	return fmt.Sprintf("DeflectKind(%d)", int8(k))
}

// Safe reports whether the deflection kind preserves edge congestion in
// the paper's sense.
func (k DeflectKind) Safe() bool {
	return k == DeflectArrivalReverse || k == DeflectSafeBackward
}

// Backward reports whether the deflection moves the packet to a lower
// level. DeflectArrivalReverse is backward whenever the arrival was a
// forward move, which is the only case that arises under valid paths.
func (k DeflectKind) Backward() bool {
	return k != DeflectForward
}
