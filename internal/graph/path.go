package graph

import "fmt"

// Path is a sequence of edges, as in the paper (Section 2.2): a path is
// denoted by its edge sequence. A *valid* path visits consecutive
// levels from a lower level to a higher level, i.e. every edge is
// traversed forward and consecutive edges share a node.
type Path []EdgeID

// ValidatePath checks that p is a valid forward path in g (paper
// definition of "valid path"). An empty path is valid.
func (g *Leveled) ValidatePath(p Path) error {
	for i := 0; i < len(p); i++ {
		if int(p[i]) < 0 || int(p[i]) >= len(g.edges) {
			return fmt.Errorf("graph: path references unknown edge %d at index %d", p[i], i)
		}
		if i > 0 {
			prev, cur := &g.edges[p[i-1]], &g.edges[p[i]]
			if prev.To != cur.From {
				return fmt.Errorf("graph: path edges %d and %d do not chain (levels %d->%d then %d->%d)",
					p[i-1], p[i],
					g.nodes[prev.From].Level, g.nodes[prev.To].Level,
					g.nodes[cur.From].Level, g.nodes[cur.To].Level)
			}
		}
	}
	return nil
}

// PathSource returns the first node of a non-empty valid path.
func (g *Leveled) PathSource(p Path) NodeID {
	return g.ends[p[0]][0]
}

// PathDest returns the last node of a non-empty valid path.
func (g *Leveled) PathDest(p Path) NodeID {
	return g.ends[p[len(p)-1]][1]
}

// PathNodes expands a path into its node sequence. For an empty path it
// returns nil.
func (g *Leveled) PathNodes(p Path) []NodeID {
	if len(p) == 0 {
		return nil
	}
	out := make([]NodeID, 0, len(p)+1)
	out = append(out, g.edges[p[0]].From)
	for _, e := range p {
		out = append(out, g.edges[e].To)
	}
	return out
}

// PathContainsLevel reports whether path p, starting at node at some
// level, passes through (or ends at) a node at the given level, and
// returns that node. Because valid paths are level-monotone this is a
// range check followed by an index.
func (g *Leveled) PathContainsLevel(p Path, level int) (NodeID, bool) {
	if len(p) == 0 {
		return NoNode, false
	}
	lo := int(g.nodeLevel[g.ends[p[0]][0]])
	hi := lo + len(p)
	if level < lo || level > hi {
		return NoNode, false
	}
	if level == lo {
		return g.ends[p[0]][0], true
	}
	return g.ends[p[level-lo-1]][1], true
}

// Reachable computes the set of nodes from which dst can be reached via
// forward edges. The result is a bitmap indexed by NodeID. Used by path
// samplers to draw uniform-ish random forward paths without dead ends.
func (g *Leveled) Reachable(dst NodeID) []bool {
	ok := make([]bool, len(g.nodes))
	ok[dst] = true
	dl := g.nodes[dst].Level
	// Walk levels from dst's level down to 0; a node reaches dst iff
	// one of its up-neighbors does.
	for l := dl - 1; l >= 0; l-- {
		for _, id := range g.levels[l] {
			for _, e := range g.nodes[id].Up {
				if ok[g.edges[e].To] {
					ok[id] = true
					break
				}
			}
		}
	}
	return ok
}

// ForwardReachableFrom computes the set of nodes reachable from src via
// forward edges (including src itself).
func (g *Leveled) ForwardReachableFrom(src NodeID) []bool {
	ok := make([]bool, len(g.nodes))
	ok[src] = true
	sl := g.nodes[src].Level
	for l := sl; l < g.depth; l++ {
		for _, id := range g.levels[l] {
			if !ok[id] {
				continue
			}
			for _, e := range g.nodes[id].Up {
				ok[g.edges[e].To] = true
			}
		}
	}
	return ok
}

// CountForwardPaths computes, for every node, the number of distinct
// forward paths from that node to dst, saturating at the given cap to
// avoid overflow (cap<=0 means saturate at 1<<62). Nodes that cannot
// reach dst get 0. Used for near-uniform path sampling.
func (g *Leveled) CountForwardPaths(dst NodeID, cap int64) []int64 {
	if cap <= 0 {
		cap = 1 << 62
	}
	cnt := make([]int64, len(g.nodes))
	cnt[dst] = 1
	dl := g.nodes[dst].Level
	for l := dl - 1; l >= 0; l-- {
		for _, id := range g.levels[l] {
			var s int64
			for _, e := range g.nodes[id].Up {
				s += cnt[g.edges[e].To]
				if s >= cap {
					s = cap
					break
				}
			}
			cnt[id] = s
		}
	}
	return cnt
}
