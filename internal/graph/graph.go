// Package graph defines the leveled-network model used throughout the
// repository: a directed acyclic layered graph whose nodes are
// partitioned into levels 0..L and whose edges connect nodes in
// consecutive levels only, exactly as in Busch (SPAA 2002), Section 1.
//
// Edges are stored with a canonical forward orientation (From at level
// l, To at level l+1). During hot-potato routing both directions of an
// edge carry traffic; direction is a property of a traversal, not of
// the edge.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Leveled network. IDs are dense:
// 0..NumNodes()-1.
type NodeID int32

// EdgeID identifies an edge within a Leveled network. IDs are dense:
// 0..NumEdges()-1.
type EdgeID int32

// None is the sentinel for "no node" / "no edge".
const (
	NoNode NodeID = -1
	NoEdge EdgeID = -1
)

// Direction is the direction of a traversal along an edge.
type Direction int8

const (
	// Forward is a traversal from the edge's From node (level l) to its
	// To node (level l+1).
	Forward Direction = iota
	// Backward is a traversal from To (level l+1) down to From (level l).
	Backward
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Forward {
		return "forward"
	}
	return "backward"
}

// Reverse returns the opposite direction.
func (d Direction) Reverse() Direction {
	if d == Forward {
		return Backward
	}
	return Forward
}

// Node is a vertex of a leveled network.
type Node struct {
	ID    NodeID
	Level int
	// Up lists edges to level Level+1 (this node is the edge's From).
	Up []EdgeID
	// Down lists edges to level Level-1 (this node is the edge's To).
	Down []EdgeID
	// Label is an optional human-readable name set by generators
	// (e.g. "r2c3" on a mesh, "w=0101,l=2" on a butterfly).
	Label string
}

// Degree returns the total number of incident edges.
func (n *Node) Degree() int { return len(n.Up) + len(n.Down) }

// Edge is a link between consecutive levels, canonically oriented
// low-to-high.
type Edge struct {
	ID   EdgeID
	From NodeID // at level l
	To   NodeID // at level l+1
}

// Leveled is an immutable leveled network. Construct via Builder.
//
// Alongside the rich Node/Edge records the network keeps flat
// structure-of-arrays mirrors of the fields the routing hot path reads
// every step: edge endpoints (8 bytes per edge) and node levels (4
// bytes per node). EndpointAt, DirectionFrom, LevelOf and the path
// helpers read only these dense arrays, so a traversal decision touches
// one cache line instead of pulling a full Node (~80 bytes, label and
// adjacency headers included) or Edge record into cache. The mirrors
// are derived once in Build and never mutated.
type Leveled struct {
	name   string
	nodes  []Node
	edges  []Edge
	levels [][]NodeID // levels[l] lists the nodes at level l
	depth  int        // L: highest level index; levels 0..L exist

	// ends[e] is {From, To} of edge e — indexable by Direction:
	// ends[e][1-d] is the endpoint reached traversing e in direction d.
	ends [][2]NodeID
	// nodeLevel[v] mirrors nodes[v].Level.
	nodeLevel []int32
}

// Name returns the topology name supplied at build time ("" if none).
func (g *Leveled) Name() string { return g.name }

// Depth returns L, the highest level index. The network has L+1 levels.
func (g *Leveled) Depth() int { return g.depth }

// NumNodes returns the number of nodes.
func (g *Leveled) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Leveled) NumEdges() int { return len(g.edges) }

// Node returns the node with the given ID. The returned pointer refers
// to the network's internal storage and must not be mutated.
func (g *Leveled) Node(id NodeID) *Node {
	return &g.nodes[id]
}

// Edge returns the edge with the given ID. The returned pointer refers
// to the network's internal storage and must not be mutated.
func (g *Leveled) Edge(id EdgeID) *Edge {
	return &g.edges[id]
}

// Level returns the node IDs at level l (internal slice; do not mutate).
func (g *Leveled) Level(l int) []NodeID {
	return g.levels[l]
}

// LevelWidth returns the number of nodes at level l.
func (g *Leveled) LevelWidth(l int) int { return len(g.levels[l]) }

// MaxLevelWidth returns the width of the widest level.
func (g *Leveled) MaxLevelWidth() int {
	w := 0
	for _, lv := range g.levels {
		if len(lv) > w {
			w = len(lv)
		}
	}
	return w
}

// MaxDegree returns the maximum node degree in the network.
func (g *Leveled) MaxDegree() int {
	d := 0
	for i := range g.nodes {
		if dd := g.nodes[i].Degree(); dd > d {
			d = dd
		}
	}
	return d
}

// EndpointAt returns the endpoint of edge e reached when traversing in
// direction dir (To for Forward, From for Backward).
func (g *Leveled) EndpointAt(e EdgeID, dir Direction) NodeID {
	return g.ends[e][1-dir]
}

// LevelOf returns the level of node v without materializing the full
// node record.
func (g *Leveled) LevelOf(v NodeID) int {
	return int(g.nodeLevel[v])
}

// Other returns the endpoint of edge e that is not v. It panics if v is
// not an endpoint of e.
func (g *Leveled) Other(e EdgeID, v NodeID) NodeID {
	ends := g.ends[e]
	switch v {
	case ends[0]:
		return ends[1]
	case ends[1]:
		return ends[0]
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", v, e))
}

// DirectionFrom returns the direction of traversing edge e starting at
// node v. It panics if v is not an endpoint of e.
func (g *Leveled) DirectionFrom(e EdgeID, v NodeID) Direction {
	ends := g.ends[e]
	switch v {
	case ends[0]:
		return Forward
	case ends[1]:
		return Backward
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", v, e))
}

// EdgeBetween returns the ID of an edge between u and w (in either
// orientation), or NoEdge if none exists. If multiple parallel edges
// exist the lowest ID is returned.
func (g *Leveled) EdgeBetween(u, w NodeID) EdgeID {
	nu := &g.nodes[u]
	best := NoEdge
	consider := func(e EdgeID) {
		ed := &g.edges[e]
		if (ed.From == u && ed.To == w) || (ed.From == w && ed.To == u) {
			if best == NoEdge || e < best {
				best = e
			}
		}
	}
	for _, e := range nu.Up {
		consider(e)
	}
	for _, e := range nu.Down {
		consider(e)
	}
	return best
}

// FindByLabel returns the first node whose Label equals label, or
// NoNode.
func (g *Leveled) FindByLabel(label string) NodeID {
	for i := range g.nodes {
		if g.nodes[i].Label == label {
			return g.nodes[i].ID
		}
	}
	return NoNode
}

// Stats summarizes structural properties of a leveled network.
type Stats struct {
	Name      string
	Nodes     int
	Edges     int
	Depth     int
	MaxWidth  int
	MinWidth  int
	MaxDegree int
	// Sources counts nodes with no Down edges; Sinks counts nodes with
	// no Up edges.
	Sources int
	Sinks   int
}

// ComputeStats summarizes g.
func (g *Leveled) ComputeStats() Stats {
	st := Stats{
		Name:     g.name,
		Nodes:    g.NumNodes(),
		Edges:    g.NumEdges(),
		Depth:    g.depth,
		MaxWidth: g.MaxLevelWidth(),
		MinWidth: g.NumNodes(),
	}
	for _, lv := range g.levels {
		if len(lv) < st.MinWidth {
			st.MinWidth = len(lv)
		}
	}
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.Degree() > st.MaxDegree {
			st.MaxDegree = n.Degree()
		}
		if len(n.Down) == 0 {
			st.Sources++
		}
		if len(n.Up) == 0 {
			st.Sinks++
		}
	}
	return st
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%s: nodes=%d edges=%d depth=%d width=[%d,%d] maxdeg=%d",
		s.Name, s.Nodes, s.Edges, s.Depth, s.MinWidth, s.MaxWidth, s.MaxDegree)
}

// Validate re-checks the structural invariants of the network: every
// edge spans exactly one level, adjacency lists are consistent, and
// level membership matches node records. Builder.Build already
// guarantees these; Validate exists for tests and for networks
// deserialized from external input.
func (g *Leveled) Validate() error {
	if g.depth < 0 {
		return fmt.Errorf("graph: negative depth %d", g.depth)
	}
	if len(g.levels) != g.depth+1 {
		return fmt.Errorf("graph: have %d level slices, want %d", len(g.levels), g.depth+1)
	}
	seen := make(map[NodeID]bool, len(g.nodes))
	for l, lv := range g.levels {
		for _, id := range lv {
			if int(id) < 0 || int(id) >= len(g.nodes) {
				return fmt.Errorf("graph: level %d references unknown node %d", l, id)
			}
			if g.nodes[id].Level != l {
				return fmt.Errorf("graph: node %d listed at level %d but records level %d", id, l, g.nodes[id].Level)
			}
			if seen[id] {
				return fmt.Errorf("graph: node %d appears in more than one level", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != len(g.nodes) {
		return fmt.Errorf("graph: %d nodes placed in levels, want %d", len(seen), len(g.nodes))
	}
	for i := range g.edges {
		e := &g.edges[i]
		if e.ID != EdgeID(i) {
			return fmt.Errorf("graph: edge %d records ID %d", i, e.ID)
		}
		lf := g.nodes[e.From].Level
		lt := g.nodes[e.To].Level
		if lt != lf+1 {
			return fmt.Errorf("graph: edge %d spans levels %d->%d; must be consecutive", i, lf, lt)
		}
		if !containsEdge(g.nodes[e.From].Up, e.ID) {
			return fmt.Errorf("graph: edge %d missing from Up list of node %d", i, e.From)
		}
		if !containsEdge(g.nodes[e.To].Down, e.ID) {
			return fmt.Errorf("graph: edge %d missing from Down list of node %d", i, e.To)
		}
	}
	// Adjacency lists must reference real incident edges.
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("graph: node %d records ID %d", i, n.ID)
		}
		for _, e := range n.Up {
			if g.edges[e].From != n.ID {
				return fmt.Errorf("graph: node %d Up lists edge %d whose From is %d", i, e, g.edges[e].From)
			}
		}
		for _, e := range n.Down {
			if g.edges[e].To != n.ID {
				return fmt.Errorf("graph: node %d Down lists edge %d whose To is %d", i, e, g.edges[e].To)
			}
		}
	}
	return nil
}

func containsEdge(list []EdgeID, e EdgeID) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}

// Builder incrementally constructs a Leveled network.
type Builder struct {
	name  string
	nodes []Node
	edges []Edge
	depth int
	err   error
}

// NewBuilder returns a Builder for a network with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, depth: -1}
}

// AddNode adds a node at the given level and returns its ID.
func (b *Builder) AddNode(level int, label string) NodeID {
	if level < 0 {
		b.fail(fmt.Errorf("graph: AddNode with negative level %d", level))
		return NoNode
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Level: level, Label: label})
	if level > b.depth {
		b.depth = level
	}
	return id
}

// AddEdge adds an edge between nodes u and w, which must sit at
// consecutive levels (in either order); the edge is stored canonically
// low-to-high. It returns the new edge's ID.
func (b *Builder) AddEdge(u, w NodeID) EdgeID {
	if b.err != nil {
		return NoEdge
	}
	if !b.validNode(u) || !b.validNode(w) {
		b.fail(fmt.Errorf("graph: AddEdge with unknown node (%d,%d)", u, w))
		return NoEdge
	}
	lu, lw := b.nodes[u].Level, b.nodes[w].Level
	switch {
	case lw == lu+1:
		// canonical
	case lu == lw+1:
		u, w = w, u
	default:
		b.fail(fmt.Errorf("graph: AddEdge between levels %d and %d; must be consecutive", lu, lw))
		return NoEdge
	}
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{ID: id, From: u, To: w})
	b.nodes[u].Up = append(b.nodes[u].Up, id)
	b.nodes[w].Down = append(b.nodes[w].Down, id)
	return id
}

func (b *Builder) validNode(n NodeID) bool {
	return n >= 0 && int(n) < len(b.nodes)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the network. It returns an error if any builder call
// failed, if the network is empty, or if some level in 0..depth has no
// nodes.
func (b *Builder) Build() (*Leveled, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.nodes) == 0 {
		return nil, fmt.Errorf("graph: empty network %q", b.name)
	}
	g := &Leveled{
		name:  b.name,
		nodes: b.nodes,
		edges: b.edges,
		depth: b.depth,
	}
	g.levels = make([][]NodeID, b.depth+1)
	for i := range g.nodes {
		l := g.nodes[i].Level
		g.levels[l] = append(g.levels[l], g.nodes[i].ID)
	}
	for l, lv := range g.levels {
		if len(lv) == 0 {
			return nil, fmt.Errorf("graph: level %d of %q has no nodes", l, b.name)
		}
		sort.Slice(lv, func(i, j int) bool { return lv[i] < lv[j] })
	}
	// Derive the flat hot-path mirrors (see the Leveled doc comment).
	g.ends = make([][2]NodeID, len(g.edges))
	for i := range g.edges {
		g.ends[i] = [2]NodeID{g.edges[i].From, g.edges[i].To}
	}
	g.nodeLevel = make([]int32, len(g.nodes))
	for i := range g.nodes {
		g.nodeLevel[i] = int32(g.nodes[i].Level)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error; for use in tests and
// generators with statically-correct construction.
func (b *Builder) MustBuild() *Leveled {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
