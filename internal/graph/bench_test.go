package graph

import (
	"fmt"
	"testing"
)

// buildWide constructs a width x depth complete-bipartite leveled
// network directly with the builder (topo is not importable from here
// without a cycle in test dependencies; the construction is trivial).
func buildWide(depth, width int) *Leveled {
	b := NewBuilder(fmt.Sprintf("wide(%d,%d)", depth, width))
	prev := make([]NodeID, 0, width)
	cur := make([]NodeID, 0, width)
	for l := 0; l <= depth; l++ {
		cur = cur[:0]
		for r := 0; r < width; r++ {
			cur = append(cur, b.AddNode(l, ""))
		}
		if l > 0 {
			for _, u := range prev {
				for _, w := range cur {
					b.AddEdge(u, w)
				}
			}
		}
		prev = append(prev[:0], cur...)
	}
	return b.MustBuild()
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildWide(16, 8)
	}
}

func BenchmarkValidate(b *testing.B) {
	g := buildWide(16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReachable(b *testing.B) {
	g := buildWide(32, 8)
	dst := g.Level(32)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Reachable(dst)
	}
}

func BenchmarkCountForwardPaths(b *testing.B) {
	g := buildWide(32, 8)
	dst := g.Level(32)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountForwardPaths(dst, 1<<40)
	}
}

func BenchmarkPathContainsLevel(b *testing.B) {
	g := buildWide(32, 4)
	// A straight path down column 0.
	var p Path
	for l := 0; l < 32; l++ {
		p = append(p, g.EdgeBetween(g.Level(l)[0], g.Level(l + 1)[0]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.PathContainsLevel(p, 16); !ok {
			b.Fatal("level lost")
		}
	}
}
