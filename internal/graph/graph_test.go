package graph

import (
	"strings"
	"testing"
)

// diamond builds the 4-node diamond:
//
//	      1
//	0 <         > 3
//	      2
//
// levels 0,1,1,2.
func diamond(t testing.TB) *Leveled {
	t.Helper()
	b := NewBuilder("diamond")
	v0 := b.AddNode(0, "s")
	v1 := b.AddNode(1, "a")
	v2 := b.AddNode(1, "b")
	v3 := b.AddNode(2, "t")
	b.AddEdge(v0, v1)
	b.AddEdge(v0, v2)
	b.AddEdge(v1, v3)
	b.AddEdge(v2, v3)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 {
		t.Errorf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", g.Depth())
	}
	if w := g.LevelWidth(1); w != 2 {
		t.Errorf("LevelWidth(1) = %d, want 2", w)
	}
	if g.Name() != "diamond" {
		t.Errorf("Name = %q", g.Name())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderReversedEdgeOrder(t *testing.T) {
	b := NewBuilder("rev")
	hi := b.AddNode(1, "")
	lo := b.AddNode(0, "")
	e := b.AddEdge(hi, lo) // given high-to-low; must be canonicalized
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ed := g.Edge(e)
	if g.Node(ed.From).Level != 0 || g.Node(ed.To).Level != 1 {
		t.Errorf("edge not canonicalized: From level %d, To level %d",
			g.Node(ed.From).Level, g.Node(ed.To).Level)
	}
}

func TestBuilderRejectsNonConsecutive(t *testing.T) {
	b := NewBuilder("bad")
	v0 := b.AddNode(0, "")
	b.AddNode(1, "") // level 1 must be populated so Build reaches the edge error
	v2 := b.AddNode(2, "")
	b.AddEdge(v0, v2)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a level-skipping edge")
	}
}

func TestBuilderRejectsEmptyLevel(t *testing.T) {
	b := NewBuilder("gap")
	b.AddNode(0, "")
	b.AddNode(2, "") // nothing at level 1
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a network with an empty level")
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("Build accepted an empty network")
	}
}

func TestBuilderRejectsNegativeLevel(t *testing.T) {
	b := NewBuilder("neg")
	b.AddNode(-1, "")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted a negative level")
	}
}

func TestBuilderRejectsUnknownNode(t *testing.T) {
	b := NewBuilder("unknown")
	v := b.AddNode(0, "")
	b.AddEdge(v, 99)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted an edge to an unknown node")
	}
}

func TestDirectionHelpers(t *testing.T) {
	if Forward.Reverse() != Backward || Backward.Reverse() != Forward {
		t.Error("Reverse broken")
	}
	if Forward.String() != "forward" || Backward.String() != "backward" {
		t.Error("String broken")
	}
}

func TestEndpointsAndDirections(t *testing.T) {
	g := diamond(t)
	e := g.EdgeBetween(0, 1)
	if e == NoEdge {
		t.Fatal("EdgeBetween(0,1) = NoEdge")
	}
	if g.EndpointAt(e, Forward) != 1 || g.EndpointAt(e, Backward) != 0 {
		t.Error("EndpointAt wrong")
	}
	if g.Other(e, 0) != 1 || g.Other(e, 1) != 0 {
		t.Error("Other wrong")
	}
	if g.DirectionFrom(e, 0) != Forward || g.DirectionFrom(e, 1) != Backward {
		t.Error("DirectionFrom wrong")
	}
	if g.EdgeBetween(0, 3) != NoEdge {
		t.Error("EdgeBetween(0,3) should be NoEdge")
	}
	if g.EdgeBetween(1, 0) != e {
		t.Error("EdgeBetween should be orientation-agnostic")
	}
}

func TestOtherPanicsOnNonEndpoint(t *testing.T) {
	g := diamond(t)
	defer func() {
		if recover() == nil {
			t.Error("Other did not panic for non-endpoint")
		}
	}()
	g.Other(g.EdgeBetween(0, 1), 3)
}

func TestFindByLabel(t *testing.T) {
	g := diamond(t)
	if got := g.FindByLabel("b"); got != 2 {
		t.Errorf("FindByLabel(b) = %d, want 2", got)
	}
	if got := g.FindByLabel("zzz"); got != NoNode {
		t.Errorf("FindByLabel(zzz) = %d, want NoNode", got)
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond(t)
	st := g.ComputeStats()
	if st.Nodes != 4 || st.Edges != 4 || st.Depth != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxWidth != 2 || st.MinWidth != 1 {
		t.Errorf("widths = [%d,%d], want [1,2]", st.MinWidth, st.MaxWidth)
	}
	if st.Sources != 1 || st.Sinks != 1 {
		t.Errorf("sources=%d sinks=%d, want 1,1", st.Sources, st.Sinks)
	}
	if st.MaxDegree != 2 {
		t.Errorf("MaxDegree = %d, want 2", st.MaxDegree)
	}
	if st.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestValidatePath(t *testing.T) {
	g := diamond(t)
	e01 := g.EdgeBetween(0, 1)
	e13 := g.EdgeBetween(1, 3)
	e02 := g.EdgeBetween(0, 2)

	if err := g.ValidatePath(Path{e01, e13}); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := g.ValidatePath(Path{}); err != nil {
		t.Errorf("empty path rejected: %v", err)
	}
	if err := g.ValidatePath(Path{e01, e02}); err == nil {
		t.Error("non-chaining path accepted")
	}
	if err := g.ValidatePath(Path{99}); err == nil {
		t.Error("unknown edge accepted")
	}
}

func TestPathAccessors(t *testing.T) {
	g := diamond(t)
	p := Path{g.EdgeBetween(0, 1), g.EdgeBetween(1, 3)}
	if g.PathSource(p) != 0 {
		t.Error("PathSource wrong")
	}
	if g.PathDest(p) != 3 {
		t.Error("PathDest wrong")
	}
	nodes := g.PathNodes(p)
	want := []NodeID{0, 1, 3}
	if len(nodes) != len(want) {
		t.Fatalf("PathNodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("PathNodes = %v, want %v", nodes, want)
		}
	}
	if g.PathNodes(nil) != nil {
		t.Error("PathNodes(nil) should be nil")
	}
}

func TestPathContainsLevel(t *testing.T) {
	g := diamond(t)
	p := Path{g.EdgeBetween(0, 2), g.EdgeBetween(2, 3)}
	cases := []struct {
		level int
		node  NodeID
		ok    bool
	}{
		{0, 0, true},
		{1, 2, true},
		{2, 3, true},
		{3, NoNode, false},
		{-1, NoNode, false},
	}
	for _, c := range cases {
		n, ok := g.PathContainsLevel(p, c.level)
		if ok != c.ok || n != c.node {
			t.Errorf("PathContainsLevel(level=%d) = (%d,%v), want (%d,%v)", c.level, n, ok, c.node, c.ok)
		}
	}
	if _, ok := g.PathContainsLevel(nil, 0); ok {
		t.Error("empty path should contain no level")
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t)
	r := g.Reachable(3)
	for id := NodeID(0); id < 4; id++ {
		if !r[id] {
			t.Errorf("node %d should reach 3", id)
		}
	}
	r1 := g.Reachable(1)
	if !r1[0] || !r1[1] || r1[2] || r1[3] {
		t.Errorf("Reachable(1) = %v", r1)
	}
}

func TestForwardReachableFrom(t *testing.T) {
	g := diamond(t)
	r := g.ForwardReachableFrom(1)
	if !r[1] || !r[3] || r[0] || r[2] {
		t.Errorf("ForwardReachableFrom(1) = %v", r)
	}
	r0 := g.ForwardReachableFrom(0)
	for id := NodeID(0); id < 4; id++ {
		if !r0[id] {
			t.Errorf("node %d should be reachable from 0", id)
		}
	}
}

func TestCountForwardPaths(t *testing.T) {
	g := diamond(t)
	cnt := g.CountForwardPaths(3, 0)
	if cnt[0] != 2 {
		t.Errorf("paths 0->3 = %d, want 2", cnt[0])
	}
	if cnt[1] != 1 || cnt[2] != 1 || cnt[3] != 1 {
		t.Errorf("cnt = %v", cnt)
	}
	// Saturation at cap.
	capped := g.CountForwardPaths(3, 1)
	if capped[0] != 1 {
		t.Errorf("capped paths 0->3 = %d, want 1", capped[0])
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid network")
		}
	}()
	NewBuilder("x").MustBuild()
}

func TestMaxDegree(t *testing.T) {
	g := diamond(t)
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var b strings.Builder
	if err := g.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, `digraph "diamond"`) {
		t.Errorf("header = %q", out[:30])
	}
	if strings.Count(out, "->") != g.NumEdges() {
		t.Errorf("edges in DOT = %d, want %d", strings.Count(out, "->"), g.NumEdges())
	}
	if strings.Count(out, "rank=same") != g.Depth()+1 {
		t.Errorf("rank groups = %d, want %d", strings.Count(out, "rank=same"), g.Depth()+1)
	}
	for _, label := range []string{`"s"`, `"a"`, `"b"`, `"t"`} {
		if !strings.Contains(out, label) {
			t.Errorf("missing label %s", label)
		}
	}
}
