package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT emits the network in Graphviz DOT format, with nodes grouped
// into same-rank clusters per level so `dot -Tsvg` lays the network out
// level by level like Figure 1. Node labels fall back to IDs when the
// generator set none.
func (g *Leveled) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.name)
	b.WriteString("  rankdir=LR;\n  node [shape=circle, fontsize=10];\n")
	for l := 0; l <= g.depth; l++ {
		fmt.Fprintf(&b, "  { rank=same; /* level %d */\n", l)
		for _, id := range g.levels[l] {
			label := g.nodes[id].Label
			if label == "" {
				label = fmt.Sprint(id)
			}
			fmt.Fprintf(&b, "    n%d [label=%q];\n", id, label)
		}
		b.WriteString("  }\n")
	}
	for i := range g.edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", g.edges[i].From, g.edges[i].To)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
